// Tests for the normalized-BGP plan cache (query/plan_cache.h): key
// canonicalization, stamp fast path, q-error invalidation after churn
// (including ErasePattern), LRU eviction, and the oracle check that a
// cache-served query returns byte-identical results to a fresh plan.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "delta/delta_hexastore.h"
#include "dict/dictionary.h"
#include "query/pattern.h"
#include "query/plan_cache.h"
#include "query/result_json.h"
#include "query/session.h"
#include "query/sparql_engine.h"

namespace hexastore {
namespace {

TriplePattern Pat(const std::string& s, const std::string& p,
                  const std::string& o) {
  auto slot = [](const std::string& t) {
    return t[0] == '?' ? PatternTerm::Variable(t.substr(1))
                       : PatternTerm::Bound(Term::Iri(t));
  };
  return TriplePattern{slot(s), slot(p), slot(o)};
}

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // p1 has 4 triples, p2 has 2: the planner starts from p2.
    for (int i = 0; i < 4; ++i) {
      Add("s" + std::to_string(i), "p1", "o");
    }
    Add("s0", "p2", "t");
    Add("s1", "p2", "t");
  }

  void Add(const std::string& s, const std::string& p,
           const std::string& o) {
    store_.Insert(dict_.Encode(Triple{Term::Iri("http://x/" + s),
                                      Term::Iri("http://x/" + p),
                                      Term::Iri("http://x/" + o)}));
  }

  CompiledBgp Compile(const std::vector<TriplePattern>& patterns) {
    return CompileBgp(patterns, dict_);
  }

  Dictionary dict_;
  DeltaHexastore store_;
};

TEST_F(PlanCacheTest, CanonicalKeyIgnoresVariableNames) {
  // Same shape, different variable spellings: CompileBgp interns
  // positionally, so the canonical keys collide (that is the point).
  CompiledBgp a = Compile(
      {Pat("?x", "http://x/p1", "?y"), Pat("?x", "http://x/p2", "?z")});
  CompiledBgp b = Compile(
      {Pat("?s", "http://x/p1", "?o"), Pat("?s", "http://x/p2", "?v")});
  EXPECT_EQ(PlanCache::CanonicalKey(a), PlanCache::CanonicalKey(b));

  // Different join structure (second pattern joins on the object):
  // different key.
  CompiledBgp c = Compile(
      {Pat("?x", "http://x/p1", "?y"), Pat("?y", "http://x/p2", "?z")});
  EXPECT_NE(PlanCache::CanonicalKey(a), PlanCache::CanonicalKey(c));

  // Different constants: different key.
  CompiledBgp d = Compile(
      {Pat("?x", "http://x/p2", "?y"), Pat("?x", "http://x/p2", "?z")});
  EXPECT_NE(PlanCache::CanonicalKey(a), PlanCache::CanonicalKey(d));
}

TEST_F(PlanCacheTest, EqualStampIsAHitUnequalStampRevalidates) {
  PlanCache cache;
  CompiledBgp bgp = Compile(
      {Pat("?x", "http://x/p1", "?y"), Pat("?x", "http://x/p2", "?z")});
  bool hit = true;
  std::vector<std::size_t> first =
      cache.Plan(store_, bgp, PlanCacheStamp{1, 0}, nullptr, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.misses(), 1u);

  // Same stamp: served without validation probes.
  std::vector<std::size_t> second =
      cache.Plan(store_, bgp, PlanCacheStamp{1, 0}, nullptr, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(second, first);
  EXPECT_EQ(cache.hits(), 1u);

  // Drifted stamp but unchanged store: probes run, plan survives.
  std::vector<std::size_t> third =
      cache.Plan(store_, bgp, PlanCacheStamp{1, 7}, nullptr, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(third, first);
  EXPECT_EQ(cache.invalidations(), 0u);
}

TEST_F(PlanCacheTest, EstimateDriftPastThresholdInvalidates) {
  PlanCache cache;
  CompiledBgp bgp = Compile(
      {Pat("?x", "http://x/p1", "?y"), Pat("?x", "http://x/p2", "?z")});
  cache.Plan(store_, bgp, PlanCacheStamp{1, 0});

  // Grow p2 from 2 to 12 triples: q-error 6 > threshold 2.
  for (int i = 0; i < 10; ++i) {
    Add("n" + std::to_string(i), "p2", "t");
  }
  bool hit = true;
  cache.Plan(store_, bgp, PlanCacheStamp{1, 10}, nullptr, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.misses(), 1u);  // an invalidation is not a miss

  // The replanned entry recorded the new estimates: next drifted-stamp
  // lookup validates cleanly.
  cache.Plan(store_, bgp, PlanCacheStamp{1, 11}, nullptr, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST_F(PlanCacheTest, SlowDriftAccumulatesAgainstPlanTimeBaseline) {
  PlanCache cache;
  CompiledBgp bgp = Compile({Pat("?x", "http://x/p2", "?z")});
  cache.Plan(store_, bgp, PlanCacheStamp{1, 0});  // p2 estimate: 2

  // Each step stays within the 2x threshold of the previous probe, but
  // the baseline must remain the PLAN-TIME estimate, so the cumulative
  // drift eventually invalidates.
  std::uint64_t stamp = 1;
  bool invalidated = false;
  for (int round = 0; round < 6 && !invalidated; ++round) {
    Add("slow" + std::to_string(round), "p2", "t");  // +1 per round
    bool hit = false;
    cache.Plan(store_, bgp, PlanCacheStamp{1, ++stamp}, nullptr, &hit);
    invalidated = !hit;
  }
  // 2 -> 8 triples in +1 steps never doubles between probes, yet must
  // cross q-error 2.0 relative to the plan-time estimate of 2.
  EXPECT_TRUE(invalidated);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST_F(PlanCacheTest, ErasePatternInvalidates) {
  PlanCache cache;
  CompiledBgp bgp = Compile(
      {Pat("?x", "http://x/p1", "?y"), Pat("?x", "http://x/p2", "?z")});
  cache.Plan(store_, bgp, PlanCacheStamp{1, 0});

  // Wipe p1 (4 triples -> 0): drift 4x on the first pattern.
  auto p1 = dict_.TryEncode(Triple{Term::Iri("http://x/s0"),
                                   Term::Iri("http://x/p1"),
                                   Term::Iri("http://x/o")});
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(store_.ErasePattern(IdPattern{kInvalidId, p1->p, kInvalidId}),
            4u);

  bool hit = true;
  cache.Plan(store_, bgp, PlanCacheStamp{2, 0}, nullptr, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST_F(PlanCacheTest, LruEvictionAtCapacity) {
  PlanCacheOptions options;
  options.capacity = 2;
  PlanCache cache(options);
  CompiledBgp a = Compile({Pat("?x", "http://x/p1", "?y")});
  CompiledBgp b = Compile({Pat("?x", "http://x/p2", "?y")});
  CompiledBgp c = Compile({Pat("http://x/s0", "?p", "?y")});
  cache.Plan(store_, a, PlanCacheStamp{1, 0});
  cache.Plan(store_, b, PlanCacheStamp{1, 0});
  // Touch `a` so `b` is the LRU victim when `c` arrives.
  cache.Plan(store_, a, PlanCacheStamp{1, 0});
  cache.Plan(store_, c, PlanCacheStamp{1, 0});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);

  bool hit = false;
  cache.Plan(store_, a, PlanCacheStamp{1, 0}, nullptr, &hit);
  EXPECT_TRUE(hit);
  cache.Plan(store_, b, PlanCacheStamp{1, 0}, nullptr, &hit);
  EXPECT_FALSE(hit) << "evicted entry must be re-planned";
}

// The oracle: under write churn, a Session answering through the cache
// must return byte-identical results to a freshly-planned execution of
// the same query against the same published state.
TEST_F(PlanCacheTest, CachedPlanMatchesFreshPlanUnderChurn) {
  PlanCache cache;
  query::SessionOptions options;
  options.pin = query::PinPolicy::kLinearizable;
  options.plan_cache = &cache;
  query::Session session(store_, dict_, options);

  const std::string query =
      "SELECT ?x ?z WHERE { ?x <http://x/p1> ?y . ?x <http://x/p2> ?z } "
      "ORDER BY ?x";
  for (int round = 0; round < 8; ++round) {
    // Churn both predicates, then publish.
    Add("c" + std::to_string(round), "p1", "o");
    Add("c" + std::to_string(round), "p2", "t");
    if (round % 3 == 2) {
      store_.Erase(dict_.Encode(Triple{
          Term::Iri("http://x/c" + std::to_string(round - 1)),
          Term::Iri("http://x/p2"), Term::Iri("http://x/t")}));
    }
    auto snapshot = store_.GetSnapshot();

    auto cached = session.Query(query);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    auto fresh = RunSparql(snapshot, dict_, query);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_EQ(ResultSetToJson(cached.value().set, dict_),
              ResultSetToJson(fresh.value(), dict_))
        << "round " << round;
  }
  EXPECT_GT(cache.hits() + cache.invalidations(), 0u);
}

}  // namespace
}  // namespace hexastore

// Unit tests for the term-level Graph facade.
#include <gtest/gtest.h>

#include "core/graph.h"

namespace hexastore {
namespace {

Triple T(const std::string& s, const std::string& p, const std::string& o) {
  return {Term::Iri(s), Term::Iri(p), Term::Iri(o)};
}

TEST(GraphTest, InsertContainsErase) {
  Graph g;
  EXPECT_TRUE(g.Insert(T("s", "p", "o")));
  EXPECT_FALSE(g.Insert(T("s", "p", "o")));
  EXPECT_TRUE(g.Contains(T("s", "p", "o")));
  EXPECT_FALSE(g.Contains(T("s", "p", "x")));
  EXPECT_TRUE(g.Erase(T("s", "p", "o")));
  EXPECT_FALSE(g.Erase(T("s", "p", "o")));
  EXPECT_EQ(g.size(), 0u);
}

TEST(GraphTest, EraseUnknownTermsIsFalse) {
  Graph g;
  g.Insert(T("s", "p", "o"));
  EXPECT_FALSE(g.Erase(T("never", "seen", "terms")));
  EXPECT_EQ(g.size(), 1u);
}

TEST(GraphTest, MatchWildcards) {
  Graph g;
  g.Insert(T("a", "p", "x"));
  g.Insert(T("a", "p", "y"));
  g.Insert(T("b", "p", "x"));
  g.Insert(T("a", "q", "x"));

  EXPECT_EQ(g.Match(std::nullopt, std::nullopt, std::nullopt).size(), 4u);
  EXPECT_EQ(g.Match(Term::Iri("a"), std::nullopt, std::nullopt).size(), 3u);
  EXPECT_EQ(g.Match(std::nullopt, Term::Iri("p"), std::nullopt).size(), 3u);
  EXPECT_EQ(g.Match(std::nullopt, std::nullopt, Term::Iri("x")).size(), 3u);
  EXPECT_EQ(
      g.Match(Term::Iri("a"), Term::Iri("p"), std::nullopt).size(), 2u);
  auto exact = g.Match(Term::Iri("b"), Term::Iri("p"), Term::Iri("x"));
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0], T("b", "p", "x"));
}

TEST(GraphTest, MatchUnknownTermIsEmpty) {
  Graph g;
  g.Insert(T("a", "p", "x"));
  EXPECT_TRUE(g.Match(Term::Iri("zzz"), std::nullopt, std::nullopt).empty());
}

TEST(GraphTest, LoadNTriples) {
  Graph g;
  auto r = g.LoadNTriples(
      "<a> <p> <b> .\n"
      "<a> <p> \"lit\"@en .\n"
      "# comment\n"
      "<a> <p> <b> .\n");  // duplicate
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), 2u);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.Contains({Term::Iri("a"), Term::Iri("p"),
                          Term::LangLiteral("lit", "en")}));
}

TEST(GraphTest, LoadNTriplesRejectsBadInput) {
  Graph g;
  auto r = g.LoadNTriples("<a> <p>\n");
  EXPECT_FALSE(r.ok());
}

TEST(GraphTest, BulkLoadMatchesInsert) {
  std::vector<Triple> data = {T("a", "p", "b"), T("b", "p", "c"),
                              T("a", "q", "c"), T("a", "p", "b")};
  Graph bulk;
  bulk.BulkLoad(data);
  Graph inc;
  for (const auto& t : data) {
    inc.Insert(t);
  }
  EXPECT_EQ(bulk.size(), inc.size());
  EXPECT_EQ(bulk.Match(std::nullopt, std::nullopt, std::nullopt),
            inc.Match(std::nullopt, std::nullopt, std::nullopt));
}

TEST(GraphTest, MixedTermKinds) {
  Graph g;
  Triple t{Term::Blank("b0"), Term::Iri("p"),
           Term::TypedLiteral("1", "int")};
  g.Insert(t);
  auto all = g.Match(std::nullopt, std::nullopt, std::nullopt);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], t);
}

}  // namespace
}  // namespace hexastore

// Unit tests for the RDF term/triple model and the N-Triples parser.
#include <gtest/gtest.h>

#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/triple.h"

namespace hexastore {
namespace {

TEST(TermTest, IriBasics) {
  Term t = Term::Iri("http://example.org/a");
  EXPECT_TRUE(t.is_iri());
  EXPECT_FALSE(t.is_literal());
  EXPECT_FALSE(t.is_blank());
  EXPECT_EQ(t.value(), "http://example.org/a");
  EXPECT_EQ(t.ToNTriples(), "<http://example.org/a>");
}

TEST(TermTest, PlainLiteral) {
  Term t = Term::Literal("hello");
  EXPECT_TRUE(t.is_literal());
  EXPECT_EQ(t.ToNTriples(), "\"hello\"");
  EXPECT_TRUE(t.language().empty());
  EXPECT_TRUE(t.datatype().empty());
}

TEST(TermTest, LangLiteral) {
  Term t = Term::LangLiteral("bonjour", "fr");
  EXPECT_EQ(t.language(), "fr");
  EXPECT_TRUE(t.datatype().empty());
  EXPECT_EQ(t.ToNTriples(), "\"bonjour\"@fr");
}

TEST(TermTest, TypedLiteral) {
  Term t = Term::TypedLiteral("42",
                              "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_EQ(t.datatype(), "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_TRUE(t.language().empty());
  EXPECT_EQ(t.ToNTriples(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(TermTest, BlankNode) {
  Term t = Term::Blank("b0");
  EXPECT_TRUE(t.is_blank());
  EXPECT_EQ(t.ToNTriples(), "_:b0");
}

TEST(TermTest, LiteralEscaping) {
  Term t = Term::Literal("he said \"hi\"\nbye\\");
  EXPECT_EQ(t.ToNTriples(), "\"he said \\\"hi\\\"\\nbye\\\\\"");
}

TEST(TermTest, EqualityDistinguishesKind) {
  EXPECT_NE(Term::Iri("a"), Term::Literal("a"));
  EXPECT_NE(Term::Literal("a"), Term::Blank("a"));
  EXPECT_EQ(Term::Iri("a"), Term::Iri("a"));
}

TEST(TermTest, EqualityDistinguishesQualifier) {
  EXPECT_NE(Term::Literal("a"), Term::LangLiteral("a", "en"));
  EXPECT_NE(Term::LangLiteral("a", "en"), Term::LangLiteral("a", "de"));
  EXPECT_NE(Term::TypedLiteral("a", "t1"), Term::TypedLiteral("a", "t2"));
  // A language tag and an identically-spelled datatype are different.
  EXPECT_NE(Term::LangLiteral("a", "x"), Term::TypedLiteral("a", "x"));
}

TEST(TermTest, OrderingIsTotal) {
  Term a = Term::Iri("a");
  Term b = Term::Iri("b");
  EXPECT_LT(a, b);
  EXPECT_LT(Term::Iri("z"), Term::Literal("a"));  // kind dominates
}

TEST(TripleTest, ToNTriples) {
  Triple t{Term::Iri("s"), Term::Iri("p"), Term::Literal("o")};
  EXPECT_EQ(t.ToNTriples(), "<s> <p> \"o\" .");
}

TEST(IdPatternTest, BoundCountAndMatches) {
  IdPattern all;
  EXPECT_EQ(all.bound_count(), 0);
  EXPECT_TRUE(all.Matches(IdTriple{1, 2, 3}));

  IdPattern sp{1, 2, kInvalidId};
  EXPECT_EQ(sp.bound_count(), 2);
  EXPECT_TRUE(sp.Matches(IdTriple{1, 2, 99}));
  EXPECT_FALSE(sp.Matches(IdTriple{1, 3, 99}));
}

TEST(NTriplesParseTest, SimpleTriple) {
  auto r = ParseNTriplesLine("<s> <p> <o> .");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().subject, Term::Iri("s"));
  EXPECT_EQ(r.value().predicate, Term::Iri("p"));
  EXPECT_EQ(r.value().object, Term::Iri("o"));
}

TEST(NTriplesParseTest, LiteralObject) {
  auto r = ParseNTriplesLine("<s> <p> \"hello world\" .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().object, Term::Literal("hello world"));
}

TEST(NTriplesParseTest, LangAndTypedLiterals) {
  auto r1 = ParseNTriplesLine("<s> <p> \"bonjour\"@fr .");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().object, Term::LangLiteral("bonjour", "fr"));

  auto r2 = ParseNTriplesLine(
      "<s> <p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().object,
            Term::TypedLiteral("42",
                               "http://www.w3.org/2001/XMLSchema#integer"));
}

TEST(NTriplesParseTest, BlankNodes) {
  auto r = ParseNTriplesLine("_:a <p> _:b .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().subject, Term::Blank("a"));
  EXPECT_EQ(r.value().object, Term::Blank("b"));
}

TEST(NTriplesParseTest, EscapedLiteral) {
  auto r = ParseNTriplesLine("<s> <p> \"a\\\"b\\nc\" .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().object.value(), "a\"b\nc");
}

TEST(NTriplesParseTest, RejectsMalformed) {
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> <o>").ok());      // no dot
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> .").ok());        // missing term
  EXPECT_FALSE(ParseNTriplesLine("\"s\" <p> <o> .").ok());  // literal subj
  EXPECT_FALSE(ParseNTriplesLine("<s> \"p\" <o> .").ok());  // literal pred
  EXPECT_FALSE(ParseNTriplesLine("<s> _:p <o> .").ok());    // blank pred
  EXPECT_FALSE(ParseNTriplesLine("<s <p> <o> .").ok());     // bad IRI
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> \"o .").ok());    // open quote
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> <o> . extra").ok());
}

TEST(NTriplesParseTest, DocumentWithCommentsAndBlanks) {
  const char* doc =
      "# a comment\n"
      "<a> <p> <b> .\n"
      "\n"
      "   # indented comment\n"
      "<b> <p> \"x\" .\n";
  auto r = ParseNTriplesDocument(doc);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(NTriplesParseTest, StrictModeReportsLine) {
  auto r = ParseNTriplesDocument("<a> <p> <b> .\nbogus line\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesParseTest, LenientModeSkips) {
  std::size_t skipped = 0;
  auto r = ParseNTriplesDocument("<a> <p> <b> .\nbogus\n<c> <p> <d> .\n",
                                 /*strict=*/false, &skipped);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_EQ(skipped, 1u);
}

TEST(NTriplesRoundTripTest, SerializeParse) {
  std::vector<Triple> triples = {
      {Term::Iri("http://x/s"), Term::Iri("http://x/p"),
       Term::LangLiteral("hi \"there\"", "en")},
      {Term::Blank("n1"), Term::Iri("http://x/q"),
       Term::TypedLiteral("3.14", "http://x/decimal")},
      {Term::Iri("http://x/s2"), Term::Iri("http://x/p"),
       Term::Literal("tab\there")},
  };
  std::string text = ToNTriplesString(triples);
  auto parsed = ParseNTriplesDocument(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), triples);
}

}  // namespace
}  // namespace hexastore

// Tests for binary snapshot persistence (the disk-based Hexastore of
// paper §7) and the underlying varint/string codec.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/graph.h"
#include "data/lubm_generator.h"
#include "io/binary_format.h"
#include "io/snapshot.h"
#include "util/rng.h"

namespace hexastore {
namespace {

TEST(BinaryFormatTest, VarintRoundTrip) {
  std::stringstream ss;
  const std::uint64_t values[] = {0,   1,    127,        128,
                                  300, 1u << 20, 0xffffffffu,
                                  0xffffffffffffffffull};
  for (std::uint64_t v : values) {
    PutVarint(ss, v);
  }
  for (std::uint64_t v : values) {
    auto r = GetVarint(ss);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), v);
  }
}

TEST(BinaryFormatTest, VarintTruncated) {
  std::stringstream ss;
  ss.put(static_cast<char>(0x80));  // continuation bit, then EOF
  EXPECT_FALSE(GetVarint(ss).ok());
}

TEST(BinaryFormatTest, StringRoundTrip) {
  std::stringstream ss;
  PutString(ss, "");
  PutString(ss, "hello");
  PutString(ss, std::string("emb\0edded", 9));
  auto a = GetString(ss);
  auto b = GetString(ss);
  auto c = GetString(ss);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a.value(), "");
  EXPECT_EQ(b.value(), "hello");
  EXPECT_EQ(c.value(), std::string("emb\0edded", 9));
}

TEST(BinaryFormatTest, StringLengthGuard) {
  std::stringstream ss;
  PutVarint(ss, 1ull << 40);  // absurd length
  EXPECT_FALSE(GetString(ss).ok());
}

TEST(BinaryFormatTest, BufferVarint) {
  std::string buf;
  AppendVarint(&buf, 0);
  AppendVarint(&buf, 12345678901234ull);
  std::size_t pos = 0;
  std::uint64_t v = 0;
  ASSERT_TRUE(ReadVarint(buf, &pos, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(ReadVarint(buf, &pos, &v));
  EXPECT_EQ(v, 12345678901234ull);
  EXPECT_EQ(pos, buf.size());
  EXPECT_FALSE(ReadVarint(buf, &pos, &v));  // exhausted
}

void FillSampleGraph(Graph* g) {
  g->Insert({Term::Iri("http://x/s"), Term::Iri("http://x/p"),
             Term::Iri("http://x/o")});
  g->Insert({Term::Iri("http://x/s"), Term::Iri("http://x/p"),
             Term::Literal("plain \"quoted\"\n")});
  g->Insert({Term::Blank("b0"), Term::Iri("http://x/q"),
             Term::LangLiteral("bonjour", "fr")});
  g->Insert({Term::Iri("http://x/s2"), Term::Iri("http://x/q"),
             Term::TypedLiteral("42", "http://x/int")});
}

void ExpectGraphsEqual(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ta = a.Match(std::nullopt, std::nullopt, std::nullopt);
  auto tb = b.Match(std::nullopt, std::nullopt, std::nullopt);
  // Decode to term triples and compare as sets (ids may be assigned in a
  // different order in principle; our format preserves them, but the
  // contract is term-level equality).
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  EXPECT_EQ(ta, tb);
}

TEST(SnapshotTest, RoundTripSmallGraph) {
  Graph original;
  FillSampleGraph(&original);
  std::stringstream ss;
  ASSERT_TRUE(SaveSnapshot(original, ss).ok());
  Graph loaded;
  Status s = LoadSnapshot(ss, &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectGraphsEqual(original, loaded);
  // Loaded store must satisfy all invariants.
  std::string err;
  EXPECT_TRUE(loaded.store().CheckInvariants(&err)) << err;
}

TEST(SnapshotTest, RoundTripEmptyGraph) {
  Graph original;
  std::stringstream ss;
  ASSERT_TRUE(SaveSnapshot(original, ss).ok());
  Graph loaded;
  ASSERT_TRUE(LoadSnapshot(ss, &loaded).ok());
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(SnapshotTest, RoundTripLubmGraph) {
  Graph original;
  original.BulkLoad(data::LubmGenerator().Generate(20000));
  std::stringstream ss;
  ASSERT_TRUE(SaveSnapshot(original, ss).ok());
  Graph loaded;
  ASSERT_TRUE(LoadSnapshot(ss, &loaded).ok());
  ExpectGraphsEqual(original, loaded);
}

TEST(SnapshotTest, DeltaEncodingIsCompact) {
  Graph g;
  g.BulkLoad(data::LubmGenerator().Generate(20000));
  std::stringstream ss;
  ASSERT_TRUE(SaveSnapshot(g, ss).ok());
  // The triple section should be far below the 24 bytes/triple of raw
  // (s, p, o) u64 storage; the dictionary strings dominate the file.
  const std::size_t file_size = ss.str().size();
  EXPECT_LT(file_size, g.size() * 24 + g.dict().size() * 120);
}

TEST(SnapshotTest, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOPE....";
  Graph g;
  Status s = LoadSnapshot(ss, &g);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(SnapshotTest, RejectsNonEmptyTarget) {
  Graph original;
  FillSampleGraph(&original);
  std::stringstream ss;
  ASSERT_TRUE(SaveSnapshot(original, ss).ok());
  Graph target;
  target.Insert({Term::Iri("a"), Term::Iri("b"), Term::Iri("c")});
  EXPECT_FALSE(LoadSnapshot(ss, &target).ok());
}

TEST(SnapshotTest, RejectsTruncation) {
  Graph original;
  FillSampleGraph(&original);
  std::stringstream ss;
  ASSERT_TRUE(SaveSnapshot(original, ss).ok());
  std::string bytes = ss.str();
  // Every strict prefix must fail cleanly (never crash, never silently
  // succeed with the full content).
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                          std::size_t{5}, std::size_t{0}}) {
    std::stringstream truncated(bytes.substr(0, cut));
    Graph g;
    Status s = LoadSnapshot(truncated, &g);
    if (s.ok()) {
      EXPECT_LT(g.size(), original.size());
    }
  }
}

TEST(SnapshotTest, RejectsOutOfRangeIds) {
  // Craft a snapshot with a triple referencing a non-existent term id.
  std::stringstream ss;
  ss.write("HXS1", 4);
  PutVarint(ss, 1);  // one term
  ss.put(0);         // IRI
  PutString(ss, "http://x/only");
  PutVarint(ss, 1);  // one triple
  PutVarint(ss, 9);  // delta_s -> s=9, out of range
  PutVarint(ss, 1);
  PutVarint(ss, 1);
  Graph g;
  Status s = LoadSnapshot(ss, &g);
  EXPECT_FALSE(s.ok());
}

TEST(SnapshotTest, FileRoundTrip) {
  Graph original;
  FillSampleGraph(&original);
  const std::string path = "/tmp/hexastore_snapshot_test.bin";
  ASSERT_TRUE(SaveSnapshotFile(original, path).ok());
  Graph loaded;
  ASSERT_TRUE(LoadSnapshotFile(path, &loaded).ok());
  ExpectGraphsEqual(original, loaded);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadSnapshotFile("/nonexistent/dir/x.bin", &loaded).ok());
}

TEST(SnapshotTest, RandomizedRoundTrips) {
  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    Graph original;
    const int n = 50 + static_cast<int>(rng.Uniform(400));
    for (int i = 0; i < n; ++i) {
      original.Insert(
          {Term::Iri("s" + std::to_string(rng.Uniform(30))),
           Term::Iri("p" + std::to_string(rng.Uniform(8))),
           rng.Bernoulli(0.5)
               ? Term::Iri("o" + std::to_string(rng.Uniform(30)))
               : Term::Literal("v" + std::to_string(rng.Uniform(50)))});
    }
    std::stringstream ss;
    ASSERT_TRUE(SaveSnapshot(original, ss).ok());
    Graph loaded;
    ASSERT_TRUE(LoadSnapshot(ss, &loaded).ok());
    ExpectGraphsEqual(original, loaded);
  }
}

// save -> load -> save must be byte-identical: loading rebuilds the exact
// dictionary order and triple set, so a second save reproduces the file.
void ExpectSaveLoadSaveByteIdentical(const Graph& original) {
  std::stringstream first;
  ASSERT_TRUE(SaveSnapshot(original, first).ok());
  Graph loaded;
  ASSERT_TRUE(LoadSnapshot(first, &loaded).ok());
  std::stringstream second;
  ASSERT_TRUE(SaveSnapshot(loaded, second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST(SnapshotTest, SaveLoadSaveByteIdenticalEmptyGraph) {
  Graph empty;
  ExpectSaveLoadSaveByteIdentical(empty);
}

TEST(SnapshotTest, SaveLoadSaveByteIdenticalSampleGraph) {
  Graph g;
  FillSampleGraph(&g);
  ExpectSaveLoadSaveByteIdentical(g);
}

TEST(SnapshotTest, RoundTripBlankNodesOnly) {
  // Every term is a blank node, including the predicate position (legal
  // at this layer: the store is term-kind-agnostic).
  Graph original;
  original.Insert({Term::Blank("a"), Term::Blank("edge"), Term::Blank("b")});
  original.Insert({Term::Blank("b"), Term::Blank("edge"), Term::Blank("c")});
  original.Insert({Term::Blank("c"), Term::Blank("edge"), Term::Blank("a")});
  original.Insert({Term::Blank(""), Term::Blank("edge"), Term::Blank("a")});
  std::stringstream ss;
  ASSERT_TRUE(SaveSnapshot(original, ss).ok());
  Graph loaded;
  Status s = LoadSnapshot(ss, &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectGraphsEqual(original, loaded);
  std::string err;
  EXPECT_TRUE(loaded.store().CheckInvariants(&err)) << err;
  ExpectSaveLoadSaveByteIdentical(original);
}

TEST(SnapshotTest, RoundTripTypedLiteralsOnly) {
  // All objects are typed literals, stressing the qualifier string path
  // (kind byte 3) including empty values and exotic datatype IRIs.
  Graph original;
  const Term s = Term::Iri("http://x/s");
  const Term p = Term::Iri("http://x/p");
  original.Insert({s, p, Term::TypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer")});
  original.Insert({s, p, Term::TypedLiteral("", "http://x/empty-value")});
  original.Insert({s, p, Term::TypedLiteral("3.14", "http://www.w3.org/2001/XMLSchema#double")});
  original.Insert({s, p, Term::TypedLiteral("true", "http://www.w3.org/2001/XMLSchema#boolean")});
  original.Insert(
      {s, p, Term::TypedLiteral(std::string("nul\0byte", 8), "http://x/bin")});
  std::stringstream ss;
  ASSERT_TRUE(SaveSnapshot(original, ss).ok());
  Graph loaded;
  Status st = LoadSnapshot(ss, &loaded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ExpectGraphsEqual(original, loaded);
  ExpectSaveLoadSaveByteIdentical(original);
}

TEST(SnapshotTest, SaveLoadSaveByteIdenticalLubmGraph) {
  Graph g;
  g.BulkLoad(data::LubmGenerator().Generate(5000));
  ExpectSaveLoadSaveByteIdentical(g);
}

}  // namespace
}  // namespace hexastore

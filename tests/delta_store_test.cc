// Unit tests of the delta staging buffer and the merging iterator: op
// staging/cancellation rules, the disjoint/subset side-list invariants,
// and MergedListCursor's sorted union-minus-tombstones walk.
#include <gtest/gtest.h>

#include <vector>

#include "delta/delta_store.h"
#include "delta/merged_list.h"

namespace hexastore {
namespace {

TEST(DeltaStoreTest, StageInsertAndLookup) {
  DeltaStore delta;
  const IdTriple t{1, 2, 3};
  EXPECT_TRUE(delta.StageInsert(t, /*base_present=*/false));
  EXPECT_EQ(delta.Lookup(t), DeltaStore::Presence::kInserted);
  // Double insert is a no-op.
  EXPECT_FALSE(delta.StageInsert(t, false));
  EXPECT_EQ(delta.insert_count(), 1u);
  EXPECT_EQ(delta.size_delta(), 1);
}

TEST(DeltaStoreTest, InsertPresentInBaseIsNoOp) {
  DeltaStore delta;
  EXPECT_FALSE(delta.StageInsert({1, 2, 3}, /*base_present=*/true));
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.Lookup({1, 2, 3}), DeltaStore::Presence::kUnknown);
}

TEST(DeltaStoreTest, EraseStagesTombstoneOnlyForBaseTriples) {
  DeltaStore delta;
  // Absent everywhere: nothing to erase.
  EXPECT_FALSE(delta.StageErase({1, 2, 3}, /*base_present=*/false));
  EXPECT_TRUE(delta.empty());
  // Present in base: tombstone.
  EXPECT_TRUE(delta.StageErase({1, 2, 3}, /*base_present=*/true));
  EXPECT_EQ(delta.Lookup({1, 2, 3}), DeltaStore::Presence::kErased);
  EXPECT_EQ(delta.tombstone_count(), 1u);
  EXPECT_EQ(delta.size_delta(), -1);
  // Double erase is a no-op.
  EXPECT_FALSE(delta.StageErase({1, 2, 3}, true));
}

TEST(DeltaStoreTest, EraseCancelsStagedInsert) {
  DeltaStore delta;
  ASSERT_TRUE(delta.StageInsert({1, 2, 3}, false));
  EXPECT_TRUE(delta.StageErase({1, 2, 3}, false));
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.Lookup({1, 2, 3}), DeltaStore::Presence::kUnknown);
  EXPECT_EQ(delta.FindLists(ListFamily::kObjects, 1, 2), nullptr);
}

TEST(DeltaStoreTest, ReinsertCancelsTombstone) {
  DeltaStore delta;
  ASSERT_TRUE(delta.StageErase({1, 2, 3}, /*base_present=*/true));
  EXPECT_TRUE(delta.StageInsert({1, 2, 3}, /*base_present=*/true));
  EXPECT_TRUE(delta.empty());  // base copy shows through again
  EXPECT_EQ(delta.Lookup({1, 2, 3}), DeltaStore::Presence::kUnknown);
}

TEST(DeltaStoreTest, SideListsMirrorAllThreeFamilies) {
  DeltaStore delta;
  ASSERT_TRUE(delta.StageInsert({7, 8, 9}, false));
  const DeltaList* objects = delta.FindLists(ListFamily::kObjects, 7, 8);
  const DeltaList* predicates =
      delta.FindLists(ListFamily::kPredicates, 7, 9);
  const DeltaList* subjects = delta.FindLists(ListFamily::kSubjects, 8, 9);
  ASSERT_NE(objects, nullptr);
  ASSERT_NE(predicates, nullptr);
  ASSERT_NE(subjects, nullptr);
  EXPECT_EQ(objects->adds, IdVec{9});
  EXPECT_EQ(predicates->adds, IdVec{8});
  EXPECT_EQ(subjects->adds, IdVec{7});
  ASSERT_TRUE(delta.StageErase({7, 8, 1}, /*base_present=*/true));
  EXPECT_EQ(delta.FindLists(ListFamily::kObjects, 7, 8)->removes,
            IdVec{1});
}

TEST(DeltaStoreTest, SortedInsertsAndTombstonesAreSorted) {
  DeltaStore delta;
  delta.StageInsert({3, 1, 1}, false);
  delta.StageInsert({1, 2, 9}, false);
  delta.StageInsert({1, 2, 4}, false);
  delta.StageErase({9, 9, 9}, true);
  delta.StageErase({2, 2, 2}, true);
  const IdTripleVec inserts = delta.SortedInserts();
  const IdTripleVec expect_inserts{{1, 2, 4}, {1, 2, 9}, {3, 1, 1}};
  EXPECT_EQ(inserts, expect_inserts);
  const IdTripleVec tombs = delta.SortedTombstones();
  const IdTripleVec expect_tombs{{2, 2, 2}, {9, 9, 9}};
  EXPECT_EQ(tombs, expect_tombs);
}

TEST(DeltaStoreTest, ClearDropsEverything) {
  DeltaStore delta;
  delta.StageInsert({1, 2, 3}, false);
  delta.StageErase({4, 5, 6}, true);
  delta.Clear();
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.insert_count(), 0u);
  EXPECT_EQ(delta.tombstone_count(), 0u);
  EXPECT_EQ(delta.FindLists(ListFamily::kObjects, 1, 2), nullptr);
}

TEST(DeltaStoreTest, CopyIsIndependent) {
  DeltaStore delta;
  delta.StageInsert({1, 2, 3}, false);
  DeltaStore copy = delta;
  copy.StageInsert({4, 5, 6}, false);
  EXPECT_EQ(delta.op_count(), 1u);
  EXPECT_EQ(copy.op_count(), 2u);
  EXPECT_EQ(delta.Lookup({4, 5, 6}), DeltaStore::Presence::kUnknown);
}

// -- MergedListCursor -----------------------------------------------------

IdVec Walk(const IdVec* base, const IdVec* adds, const IdVec* removes) {
  IdVec out;
  for (MergedListCursor c(base, adds, removes); !c.done(); c.next()) {
    out.push_back(c.value());
  }
  return out;
}

TEST(MergedListCursorTest, AllInputsNull) {
  EXPECT_EQ(Walk(nullptr, nullptr, nullptr), IdVec{});
}

TEST(MergedListCursorTest, BaseOnly) {
  const IdVec base{1, 3, 5};
  EXPECT_EQ(Walk(&base, nullptr, nullptr), base);
}

TEST(MergedListCursorTest, AddsInterleaveWithBase) {
  const IdVec base{2, 5, 9};
  const IdVec adds{1, 4, 10};
  const IdVec expect{1, 2, 4, 5, 9, 10};
  EXPECT_EQ(Walk(&base, &adds, nullptr), expect);
}

TEST(MergedListCursorTest, RemovesDropBaseElements) {
  const IdVec base{1, 2, 3, 4, 5};
  const IdVec removes{1, 3, 5};
  const IdVec expect{2, 4};
  EXPECT_EQ(Walk(&base, nullptr, &removes), expect);
}

TEST(MergedListCursorTest, AddsAndRemovesTogether) {
  const IdVec base{2, 4, 6, 8};
  const IdVec adds{1, 5, 9};
  const IdVec removes{4, 8};
  const IdVec expect{1, 2, 5, 6, 9};
  EXPECT_EQ(Walk(&base, &adds, &removes), expect);
}

TEST(MergedListCursorTest, EverythingRemoved) {
  const IdVec base{1, 2};
  const IdVec removes{1, 2};
  EXPECT_EQ(Walk(&base, nullptr, &removes), IdVec{});
}

TEST(MergedListCursorTest, IntersectCursorsMatchesVectorIntersect) {
  const IdVec a_base{1, 3, 5, 7};
  const IdVec a_adds{2, 9};
  const IdVec a_removes{5};
  const IdVec b_base{2, 3, 9, 11};
  // merged a = {1,2,3,7,9}, merged b = {2,3,9,11} -> {2,3,9}
  const IdVec expect{2, 3, 9};
  EXPECT_EQ(
      IntersectCursors(MergedListCursor(&a_base, &a_adds, &a_removes),
                       MergedListCursor(&b_base, nullptr, nullptr)),
      expect);
}

}  // namespace
}  // namespace hexastore

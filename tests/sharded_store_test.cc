// Sharded-vs-single oracle: a ShardedHexastore at shard counts
// {1, 2, 4, 7} must stay byte-identical to one DeltaHexastore over the
// same ops — contents, Match results, ErasePattern counts, snapshot
// views, merged accessor orders, and EstimateMatches where the facade
// contract promises exactness (fully-bound patterns; any pattern after
// Compact). Also pins the predicate-only ErasePattern fan-out count
// (the facade must SUM per-shard counts, never double-count) including
// the leveled pattern-tombstone-above-L1 interleavings, and the routing
// invariant behind it all.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "delta/delta_hexastore.h"
#include "shard/sharded_hexastore.h"
#include "util/rng.h"

namespace hexastore {
namespace {

IdTriple RandomTriple(Rng* rng, Id max_s, Id max_p, Id max_o) {
  return IdTriple{1 + rng->Uniform(max_s), 1 + rng->Uniform(max_p),
                  1 + rng->Uniform(max_o)};
}

// All 8 pattern shapes probed against both stores.
void ExpectPatternsEqual(const ShardedHexastore& sharded,
                         const DeltaHexastore& single, Rng* rng,
                         int probes_per_mask) {
  for (int mask = 0; mask < 8; ++mask) {
    for (int probe = 0; probe < probes_per_mask; ++probe) {
      IdPattern q;
      if (mask & 1) q.s = 1 + rng->Uniform(20);
      if (mask & 2) q.p = 1 + rng->Uniform(10);
      if (mask & 4) q.o = 1 + rng->Uniform(20);
      EXPECT_EQ(sharded.Match(q), single.Match(q))
          << "shards=" << sharded.shard_count() << " s=" << q.s
          << " p=" << q.p << " o=" << q.o;
      EXPECT_EQ(sharded.CountMatches(q), single.CountMatches(q));
    }
  }
}

class ShardedOracleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedOracleTest, ChurnStaysByteIdentical) {
  const std::size_t shards = GetParam();
  ShardedOptions opts;
  opts.shards = shards;
  opts.delta.compact_threshold = 96;  // compactions fire mid-churn
  ShardedHexastore sharded(opts);
  DeltaHexastore single(96);

  Rng rng(0x5eed0 + shards);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 1200; ++i) {
      const double dice = rng.NextDouble();
      if (dice < 0.62) {
        const IdTriple t = RandomTriple(&rng, 19, 9, 19);
        EXPECT_EQ(sharded.Insert(t), single.Insert(t));
      } else if (dice < 0.90) {
        const IdTriple t = RandomTriple(&rng, 19, 9, 19);
        EXPECT_EQ(sharded.Erase(t), single.Erase(t));
      } else if (dice < 0.97) {
        // Pattern erases across shapes: bound-subject routes, the rest
        // fan out; counts must agree either way.
        IdPattern q;
        if (rng.Bernoulli(0.3)) q.s = 1 + rng.Uniform(20);
        if (rng.Bernoulli(0.6)) q.p = 1 + rng.Uniform(10);
        if (rng.Bernoulli(0.3)) q.o = 1 + rng.Uniform(20);
        EXPECT_EQ(sharded.ErasePattern(q), single.ErasePattern(q));
      } else {
        const IdTriple t = RandomTriple(&rng, 19, 9, 19);
        EXPECT_EQ(sharded.Contains(t), single.Contains(t));
      }
      if (i % 300 == 299) {
        EXPECT_EQ(sharded.size(), single.size());
      }
    }
    ExpectPatternsEqual(sharded, single, &rng, 8);

    // Fully-bound estimates are exact on both sides, hence identical
    // even mid-churn.
    for (int probe = 0; probe < 40; ++probe) {
      const IdTriple t = RandomTriple(&rng, 19, 9, 19);
      const IdPattern q{t.s, t.p, t.o};
      EXPECT_EQ(sharded.EstimateMatches(q), single.EstimateMatches(q));
    }

    std::string err;
    EXPECT_TRUE(sharded.CheckInvariants(&err)) << err;

    if (round == 1) {
      // Bulk load on top of live state: partitioned load must agree
      // with the single store's.
      IdTripleVec batch;
      for (int i = 0; i < 700; ++i) {
        batch.push_back(RandomTriple(&rng, 19, 9, 19));
      }
      sharded.BulkLoad(batch);
      single.BulkLoad(batch);
      EXPECT_EQ(sharded.size(), single.size());
    }
  }

  // Post-Compact quiescence: estimates become exact base counts on
  // every shard, so ANY pattern's estimate is additive and identical.
  sharded.Compact();
  single.Compact();
  EXPECT_EQ(sharded.StagedOps(), 0u);
  Rng est_rng(0xe577 + shards);
  for (int probe = 0; probe < 60; ++probe) {
    IdPattern q;
    if (est_rng.Bernoulli(0.5)) q.s = 1 + est_rng.Uniform(20);
    if (est_rng.Bernoulli(0.5)) q.p = 1 + est_rng.Uniform(10);
    if (est_rng.Bernoulli(0.5)) q.o = 1 + est_rng.Uniform(20);
    EXPECT_EQ(sharded.EstimateMatches(q), single.EstimateMatches(q))
        << "post-compact s=" << q.s << " p=" << q.p << " o=" << q.o;
  }
  ExpectPatternsEqual(sharded, single, &est_rng, 6);

  // Clear must empty every shard.
  sharded.Clear();
  single.Clear();
  EXPECT_EQ(sharded.size(), 0u);
  EXPECT_EQ(sharded.Match(IdPattern{}), single.Match(IdPattern{}));
}

TEST_P(ShardedOracleTest, SnapshotAndAccessorViewsAgree) {
  const std::size_t shards = GetParam();
  ShardedOptions opts;
  opts.shards = shards;
  opts.delta.compact_threshold = 128;
  ShardedHexastore sharded(opts);
  DeltaHexastore single(128);

  Rng rng(0xacce55 + shards);
  for (int i = 0; i < 900; ++i) {
    const IdTriple t = RandomTriple(&rng, 15, 7, 15);
    sharded.Insert(t);
    single.Insert(t);
  }
  for (int i = 0; i < 200; ++i) {
    const IdTriple t = RandomTriple(&rng, 15, 7, 15);
    sharded.Erase(t);
    single.Erase(t);
  }

  const ShardedSnapshot snap = sharded.GetSnapshot();
  const DeltaHexastore::Snapshot oracle = single.GetSnapshot();
  EXPECT_EQ(snap.shard_count(), shards);
  EXPECT_EQ(snap.StampVector().size(), shards * 2);
  EXPECT_EQ(snap.size(), oracle.size());

  // Snapshot pattern answers and both stores' merged accessor views:
  // scatter results must reproduce the single store's sorted orders
  // byte-for-byte (subject lists are disjoint unions; object/predicate
  // lists are sorted-unique merges).
  for (Id s = 1; s <= 16; ++s) {
    EXPECT_EQ(snap.predicates_of_subject(s), oracle.predicates_of_subject(s));
    EXPECT_EQ(snap.objects_of_subject(s), oracle.objects_of_subject(s));
    EXPECT_EQ(sharded.predicates_of_subject(s),
              single.predicates_of_subject(s));
    EXPECT_EQ(sharded.objects_of_subject(s), single.objects_of_subject(s));
    EXPECT_EQ(sharded.subjects_of_object(s), single.subjects_of_object(s));
    EXPECT_EQ(snap.subjects_of_object(s), oracle.subjects_of_object(s));
  }
  for (Id p = 1; p <= 8; ++p) {
    EXPECT_EQ(snap.subjects_of_predicate(p), oracle.subjects_of_predicate(p));
    EXPECT_EQ(snap.objects_of_predicate(p), oracle.objects_of_predicate(p));
    EXPECT_EQ(sharded.subjects_of_predicate(p),
              single.subjects_of_predicate(p));
    EXPECT_EQ(sharded.objects_of_predicate(p), single.objects_of_predicate(p));
    EXPECT_EQ(sharded.predicates_of_object(p), single.predicates_of_object(p));
  }
  for (Id s = 1; s <= 16; ++s) {
    for (Id p = 1; p <= 8; ++p) {
      EXPECT_EQ(snap.objects(s, p).Materialize(),
                oracle.objects(s, p).Materialize());
      EXPECT_EQ(sharded.objects(s, p).Materialize(),
                single.objects(s, p).Materialize());
      EXPECT_EQ(snap.subjects(p, s).Materialize(),
                oracle.subjects(p, s).Materialize());
      EXPECT_EQ(sharded.subjects(p, s).Materialize(),
                single.subjects(p, s).Materialize());
    }
  }
  for (int probe = 0; probe < 80; ++probe) {
    IdPattern q;
    if (probe % 2) q.s = 1 + rng.Uniform(16);
    if (probe % 3) q.p = 1 + rng.Uniform(8);
    if (probe % 5) q.o = 1 + rng.Uniform(16);
    EXPECT_EQ(snap.Match(q), oracle.Match(q));
  }

  // Snapshot isolation: post-pin writes are invisible to the pinned
  // view on every shard.
  const std::size_t pinned_size = snap.size();
  for (int i = 0; i < 100; ++i) {
    IdTriple t{100 + rng.Uniform(50), 1 + rng.Uniform(7),
               100 + rng.Uniform(50)};
    sharded.Insert(t);
  }
  EXPECT_EQ(snap.size(), pinned_size);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedOracleTest,
                         ::testing::Values(1, 2, 4, 7));

TEST(ShardedHexastoreTest, ShardOfIsStableAndSpreads) {
  // Deterministic, in-range, and not striping dense ids into one shard.
  std::set<std::size_t> hit;
  for (Id s = 1; s <= 64; ++s) {
    const std::size_t a = ShardedHexastore::ShardOf(s, 4);
    ASSERT_LT(a, 4u);
    ASSERT_EQ(a, ShardedHexastore::ShardOf(s, 4));
    hit.insert(a);
  }
  EXPECT_EQ(hit.size(), 4u) << "64 dense ids left some shard empty";
  EXPECT_EQ(ShardedHexastore::ShardOf(7, 1), 0u);
}

// The facade regression the fan-out design exists for: a predicate-only
// pattern reaches EVERY shard, and because the subject partition is
// disjoint the summed per-shard counts must equal the single-store
// count exactly — no triple double-counted, none missed.
TEST(ShardedHexastoreTest, PredicateOnlyErasePatternCountsExactly) {
  ShardedOptions opts;
  opts.shards = 4;
  opts.delta.compact_threshold = 64;
  ShardedHexastore sharded(opts);
  DeltaHexastore single(64);

  Rng rng(0xfade);
  for (int i = 0; i < 1500; ++i) {
    const IdTriple t = RandomTriple(&rng, 30, 4, 30);
    sharded.Insert(t);
    single.Insert(t);
  }
  for (Id p = 1; p <= 5; ++p) {
    IdPattern q;
    q.p = p;
    const std::uint64_t expected = single.CountMatches(q);
    EXPECT_EQ(sharded.CountMatches(q), expected);
    const std::size_t erased_sharded = sharded.ErasePattern(q);
    const std::size_t erased_single = single.ErasePattern(q);
    EXPECT_EQ(erased_sharded, erased_single);
    EXPECT_EQ(erased_sharded, expected);
    // Idempotence: the predicate is gone everywhere, a second fan-out
    // finds nothing.
    EXPECT_EQ(sharded.ErasePattern(q), 0u);
    EXPECT_EQ(sharded.CountMatches(q), 0u);
  }
  EXPECT_EQ(sharded.size(), 0u);
  EXPECT_EQ(single.size(), 0u);
}

// Same fan-out count pinned on a LEVELED configuration where the
// predicate erase lands as a pattern tombstone above L1: sealed L0 runs
// and an L1 run all hold matching staged inserts when the erase
// arrives, then fresh inserts of the same predicate land on top of the
// tombstone, then everything compacts. Counts and contents must track
// the single store through every interleaving.
TEST(ShardedHexastoreTest, PatternTombstoneAboveL1Interleavings) {
  ShardedOptions opts;
  opts.shards = 4;
  opts.delta.compact_threshold = 48;
  opts.delta.l0_run_limit = 3;  // leveled: seals stack as L0 runs
  DeltaOptions single_opts;
  single_opts.compact_threshold = 48;
  single_opts.l0_run_limit = 3;
  ShardedHexastore sharded(opts);
  DeltaHexastore single(single_opts);

  Rng rng(0x1e7e1);
  // Phase 1: enough churn that seals fold runs into L1 on every shard.
  for (int i = 0; i < 800; ++i) {
    const IdTriple t = RandomTriple(&rng, 25, 3, 25);
    EXPECT_EQ(sharded.Insert(t), single.Insert(t));
    if (rng.Bernoulli(0.15)) {
      const IdTriple e = RandomTriple(&rng, 25, 3, 25);
      EXPECT_EQ(sharded.Erase(e), single.Erase(e));
    }
  }
  // Phase 2: the predicate-wide erase — a pattern tombstone shadowing
  // staged inserts across active/L0/L1 layers.
  IdPattern wipe;
  wipe.p = 2;
  const std::uint64_t before = single.CountMatches(wipe);
  EXPECT_EQ(sharded.CountMatches(wipe), before);
  EXPECT_EQ(sharded.ErasePattern(wipe), single.ErasePattern(wipe));
  EXPECT_EQ(sharded.CountMatches(wipe), 0u);
  // Phase 3: resurrect some of the predicate above the tombstone.
  for (int i = 0; i < 200; ++i) {
    IdTriple t{1 + rng.Uniform(25), 2, 1 + rng.Uniform(25)};
    EXPECT_EQ(sharded.Insert(t), single.Insert(t));
  }
  EXPECT_EQ(sharded.CountMatches(wipe), single.CountMatches(wipe));
  // Phase 4: a second wipe while the first tombstone may still sit in
  // a lower level — counts must only cover the resurrected triples.
  EXPECT_EQ(sharded.ErasePattern(wipe), single.ErasePattern(wipe));
  // Phase 5: full drain; the merged result must agree everywhere.
  sharded.Compact();
  single.Compact();
  EXPECT_EQ(sharded.size(), single.size());
  EXPECT_EQ(sharded.Match(IdPattern{}), single.Match(IdPattern{}));
  std::string err;
  EXPECT_TRUE(sharded.CheckInvariants(&err)) << err;
}

TEST(ShardedHexastoreTest, StatsAggregateAndMetersCount) {
  ShardedOptions opts;
  opts.shards = 2;
  opts.delta.compact_threshold = 32;
  ShardedHexastore sharded(opts);
  Rng rng(0x57a75);
  for (int i = 0; i < 300; ++i) {
    sharded.Insert(RandomTriple(&rng, 40, 6, 40));
  }
  const DeltaStats stats = sharded.Stats();
  EXPECT_EQ(stats.base_triples + stats.staged_inserts -
                stats.staged_tombstones,
            sharded.size());
  // The facade's meters live in shard 0's registry and exports carry
  // the hexa_shard_* series.
  const std::string text = sharded.MetricsText();
  EXPECT_NE(text.find("hexa_shard_count"), std::string::npos);
  EXPECT_NE(text.find("hexa_shard_routed_writes_total"), std::string::npos);
  EXPECT_NE(text.find("hexa_shard_0_triples"), std::string::npos);
  EXPECT_NE(text.find("hexa_shard_1_triples"), std::string::npos);
}

TEST(ShardedHexastoreTest, NormalizeClampsZeroShards) {
  ShardedOptions opts;
  opts.shards = 0;
  const std::string note = opts.Normalize();
  EXPECT_EQ(opts.shards, 1u);
  EXPECT_NE(note.find("clamped"), std::string::npos);
}

}  // namespace
}  // namespace hexastore

// Unit tests for the write-ahead log: record codec + CRC framing,
// writer/reader roundtrip, segment rotation, the manifest, durability
// modes, and multithreaded group commit.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "wal/durable_store.h"
#include "wal/file_util.h"
#include "wal/manifest.h"
#include "wal/wal_reader.h"
#include "wal/wal_writer.h"

namespace hexastore {
namespace {

namespace fs = std::filesystem;

// A unique, auto-removed directory per test.
class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("hexa_wal_test_") + info->name() + "_" +
             std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string SegmentPath(std::uint64_t id) const {
    return (fs::path(dir_) / WalSegmentFileName(id)).string();
  }

  std::string dir_;
};

WalRecord MakeRecord(std::uint64_t seq, WalOp op, Id s, Id p, Id o) {
  WalRecord r;
  r.sequence = seq;
  r.op = op;
  r.s = s;
  r.p = p;
  r.o = o;
  return r;
}

TEST_F(WalTest, RecordCodecRoundTrip) {
  const std::vector<WalRecord> records = {
      MakeRecord(1, WalOp::kInsert, 1, 2, 3),
      MakeRecord(2, WalOp::kErase, 1u << 20, 5, 1u << 30),
      MakeRecord(3, WalOp::kClear, 0, 0, 0),
      MakeRecord(4, WalOp::kErasePattern, 0, 7, 0),
  };
  std::string buf;
  for (const WalRecord& r : records) {
    AppendWalRecord(&buf, r);
  }
  std::size_t pos = 0;
  for (const WalRecord& expected : records) {
    WalRecord got;
    ASSERT_EQ(ParseWalRecord(buf, &pos, &got), WalParse::kRecord);
    EXPECT_EQ(got, expected);
  }
  WalRecord got;
  EXPECT_EQ(ParseWalRecord(buf, &pos, &got), WalParse::kEnd);
}

TEST_F(WalTest, EveryByteFlipIsDetected) {
  std::string buf;
  AppendWalRecord(&buf, MakeRecord(42, WalOp::kInsert, 11, 22, 33));
  for (std::size_t i = 0; i < buf.size(); ++i) {
    for (unsigned char mask : {0x01, 0x80}) {
      std::string corrupted = buf;
      corrupted[i] = static_cast<char>(corrupted[i] ^ mask);
      std::size_t pos = 0;
      WalRecord got;
      // Either the frame is rejected outright, or (if the flip landed in
      // a varint length making the frame shorter) the CRC must fail.
      EXPECT_EQ(ParseWalRecord(corrupted, &pos, &got), WalParse::kCorrupt)
          << "flip at byte " << i;
    }
  }
}

TEST_F(WalTest, EveryTruncationIsTornNotMisparsed) {
  std::string buf;
  AppendWalRecord(&buf, MakeRecord(7, WalOp::kErase, 100, 200, 300));
  for (std::size_t len = 0; len < buf.size(); ++len) {
    const std::string prefix = buf.substr(0, len);
    std::size_t pos = 0;
    WalRecord got;
    const WalParse result = ParseWalRecord(prefix, &pos, &got);
    if (len == 0) {
      EXPECT_EQ(result, WalParse::kEnd);
    } else {
      EXPECT_EQ(result, WalParse::kCorrupt) << "prefix length " << len;
    }
  }
}

TEST_F(WalTest, WriterReaderRoundTrip) {
  WalWriterOptions options;
  options.dir = dir_;
  options.mode = DurabilityMode::kNone;
  auto writer = WalWriter::Open(options, 1, 1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (Id i = 1; i <= 10; ++i) {
    auto seq = writer.value()->Append(WalOp::kInsert, i, i + 1, i + 2);
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(seq.value(), i);
  }
  ASSERT_TRUE(writer.value()->Sync().ok());

  auto contents = ReadWalSegment(SegmentPath(1), false);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_FALSE(contents.value().torn_tail);
  ASSERT_EQ(contents.value().records.size(), 10u);
  for (Id i = 1; i <= 10; ++i) {
    const WalRecord& r = contents.value().records[i - 1];
    EXPECT_EQ(r.sequence, i);
    EXPECT_EQ(r.op, WalOp::kInsert);
    EXPECT_EQ(r.triple(), (IdTriple{i, i + 1, i + 2}));
  }
}

TEST_F(WalTest, RotationSplitsSegmentsAndKeepsSequences) {
  WalWriterOptions options;
  options.dir = dir_;
  options.mode = DurabilityMode::kNone;
  options.segment_bytes = 64;  // a handful of records per segment
  auto writer = WalWriter::Open(options, 1, 1);
  ASSERT_TRUE(writer.ok());
  constexpr std::uint64_t kRecords = 100;
  for (std::uint64_t i = 1; i <= kRecords; ++i) {
    ASSERT_TRUE(writer.value()->Append(WalOp::kInsert, i, i, i).ok());
  }
  ASSERT_TRUE(writer.value()->Sync().ok());
  EXPECT_GT(writer.value()->active_segment_id(), 2u);

  auto segments = ListWalSegments(dir_);
  ASSERT_TRUE(segments.ok());
  std::uint64_t expected_seq = 1;
  for (std::uint64_t id : segments.value()) {
    auto contents = ReadWalSegment(SegmentPath(id), false);
    ASSERT_TRUE(contents.ok()) << contents.status().ToString();
    for (const WalRecord& r : contents.value().records) {
      EXPECT_EQ(r.sequence, expected_seq++);
    }
  }
  EXPECT_EQ(expected_seq, kRecords + 1);
}

TEST_F(WalTest, ManifestRoundTripAndErrors) {
  EXPECT_EQ(ReadWalManifest(dir_).status().code(), StatusCode::kNotFound);

  WalManifest manifest;
  manifest.checkpoint_sequence = 123;
  manifest.snapshot_file = "snapshot-123.hxt";
  manifest.first_segment_id = 7;
  manifest.next_sequence = 124;
  ASSERT_TRUE(WriteWalManifest(dir_, manifest).ok());
  auto read = ReadWalManifest(dir_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), manifest);
  // No stray tmp file after the atomic rename.
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "MANIFEST.tmp"));

  // Corruption is a ParseError, not a silent fresh start.
  std::string raw;
  ASSERT_TRUE(
      ReadFileToString((fs::path(dir_) / "MANIFEST").string(), &raw).ok());
  raw[0] ^= 0x40;
  ASSERT_TRUE(
      AtomicWriteFile((fs::path(dir_) / "MANIFEST").string(), raw).ok());
  EXPECT_EQ(ReadWalManifest(dir_).status().code(), StatusCode::kParseError);
}

TEST_F(WalTest, DurabilityModesDriveFsyncCadence) {
  // kNone: appends never fsync (only the writer's shutdown sync).
  {
    WalWriterOptions options;
    options.dir = dir_ + "/none";
    options.mode = DurabilityMode::kNone;
    auto writer = WalWriter::Open(options, 1, 1);
    ASSERT_TRUE(writer.ok());
    for (Id i = 1; i <= 50; ++i) {
      auto seq = writer.value()->Append(WalOp::kInsert, i, i, i);
      ASSERT_TRUE(seq.ok());
      ASSERT_TRUE(writer.value()->Commit(seq.value()).ok());
    }
    EXPECT_EQ(writer.value()->stats().fsyncs, 0u);
  }
  // kBatched with a large batch: no fsync until the threshold.
  {
    WalWriterOptions options;
    options.dir = dir_ + "/batched";
    options.mode = DurabilityMode::kBatched;
    options.batch_bytes = 1u << 20;
    auto writer = WalWriter::Open(options, 1, 1);
    ASSERT_TRUE(writer.ok());
    for (Id i = 1; i <= 50; ++i) {
      auto seq = writer.value()->Append(WalOp::kInsert, i, i, i);
      ASSERT_TRUE(seq.ok());
      ASSERT_TRUE(writer.value()->Commit(seq.value()).ok());
    }
    EXPECT_EQ(writer.value()->stats().fsyncs, 0u);
  }
  // kBatched with a tiny batch: fsyncs happen, but far fewer than one
  // per record is not guaranteed at this size — just require some.
  {
    WalWriterOptions options;
    options.dir = dir_ + "/batched_small";
    options.mode = DurabilityMode::kBatched;
    options.batch_bytes = 32;
    auto writer = WalWriter::Open(options, 1, 1);
    ASSERT_TRUE(writer.ok());
    for (Id i = 1; i <= 50; ++i) {
      auto seq = writer.value()->Append(WalOp::kInsert, i, i, i);
      ASSERT_TRUE(seq.ok());
      ASSERT_TRUE(writer.value()->Commit(seq.value()).ok());
    }
    EXPECT_GT(writer.value()->stats().fsyncs, 0u);
  }
  // kPerCommit: every commit returns only after a covering fsync.
  {
    WalWriterOptions options;
    options.dir = dir_ + "/percommit";
    options.mode = DurabilityMode::kPerCommit;
    auto writer = WalWriter::Open(options, 1, 1);
    ASSERT_TRUE(writer.ok());
    for (Id i = 1; i <= 20; ++i) {
      auto seq = writer.value()->Append(WalOp::kInsert, i, i, i);
      ASSERT_TRUE(seq.ok());
      ASSERT_TRUE(writer.value()->Commit(seq.value()).ok());
      EXPECT_GE(writer.value()->synced_sequence(), seq.value());
    }
    EXPECT_GE(writer.value()->stats().fsyncs, 20u);
  }
}

TEST_F(WalTest, GroupCommitSharesFsyncsAcrossThreads) {
  DurabilityOptions options;
  options.dir = dir_;
  options.mode = DurabilityMode::kPerCommit;
  auto opened = DurableDeltaHexastore::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto store = std::move(opened).value();

  constexpr int kThreads = 4;
  constexpr Id kPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &failures, t] {
      for (Id i = 1; i <= kPerThread; ++i) {
        const Id base = static_cast<Id>(t) * 1000000 + i;
        if (!store->Insert(IdTriple{base, base + 1, base + 2})) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(store->status().ok()) << store->status().ToString();
  EXPECT_EQ(store->size(), static_cast<std::size_t>(kThreads) * kPerThread);

  const WalStats stats = store->wal_stats();
  EXPECT_EQ(stats.records_appended,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Every record is durable on return...
  EXPECT_EQ(stats.commit_requests, stats.records_appended);
  // ...but concurrent committers piggybacked on shared fsyncs.
  EXPECT_LE(stats.fsyncs, stats.commit_requests);

  // Reopen: everything the threads wrote is recovered.
  store.reset();
  auto reopened = DurableDeltaHexastore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    const Id base = static_cast<Id>(t) * 1000000 + 1;
    EXPECT_TRUE(reopened.value()->Contains(IdTriple{base, base + 1, base + 2}));
  }
}

TEST_F(WalTest, SegmentFileNameParsing) {
  EXPECT_EQ(WalSegmentFileName(42), "wal-000042.log");
  std::uint64_t id = 0;
  EXPECT_TRUE(ParseWalSegmentFileName("wal-000042.log", &id));
  EXPECT_EQ(id, 42u);
  EXPECT_TRUE(ParseWalSegmentFileName("wal-1234567.log", &id));
  EXPECT_EQ(id, 1234567u);
  EXPECT_FALSE(ParseWalSegmentFileName("wal-.log", &id));
  EXPECT_FALSE(ParseWalSegmentFileName("wal-12a4.log", &id));
  EXPECT_FALSE(ParseWalSegmentFileName("snapshot-12.hxt", &id));
  EXPECT_FALSE(ParseWalSegmentFileName("MANIFEST", &id));
}

}  // namespace
}  // namespace hexastore

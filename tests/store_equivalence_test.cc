// Integration property test: all seven stores (Hexastore, COVP1, COVP2,
// TripleTable, DeltaHexastore in both a compacting and a pure-delta
// configuration, and a 3-shard ShardedHexastore) answer every pattern
// identically under random workloads of inserts, erases and bulk loads.
// (The dedicated sharded-vs-single oracle at shards {1,2,4,7} lives in
// sharded_store_test.cc; riding along here additionally cross-checks the
// facade against the non-delta baselines.)
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/triple_table.h"
#include "baseline/vertical_store.h"
#include "core/hexastore.h"
#include "delta/delta_hexastore.h"
#include "shard/sharded_hexastore.h"
#include "util/rng.h"

namespace hexastore {
namespace {

ShardedOptions SmallShardedOptions() {
  ShardedOptions opts;
  opts.shards = 3;
  // Tiny threshold so per-shard compactions fire mid-workload.
  opts.delta.compact_threshold = 64;
  return opts;
}

struct StoreSet {
  Hexastore hexa;
  VerticalStore covp1{false};
  VerticalStore covp2{true};
  TripleTableStore table;
  // Tiny threshold: compactions fire constantly mid-workload, so probes
  // hit freshly-drained and half-staged states alike.
  DeltaHexastore delta_compacting{128};
  // Huge threshold: the whole workload stays staged in the delta.
  DeltaHexastore delta_staged{1u << 30};
  ShardedHexastore sharded{SmallShardedOptions()};

  std::vector<TripleStore*> all() {
    return {&hexa,  &covp1,            &covp2,       &table,
            &delta_compacting, &delta_staged, &sharded};
  }
};

void ExpectAllEqual(StoreSet* stores, const IdPattern& q) {
  const IdTripleVec expect = stores->table.Match(q);
  for (TripleStore* s : stores->all()) {
    EXPECT_EQ(s->Match(q), expect)
        << s->name() << " disagrees on pattern s=" << q.s << " p=" << q.p
        << " o=" << q.o;
  }
}

class StoreEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreEquivalenceTest, RandomMutationWorkload) {
  Rng rng(GetParam());
  StoreSet stores;
  for (int i = 0; i < 2500; ++i) {
    IdTriple t{1 + rng.Uniform(15), 1 + rng.Uniform(8),
               1 + rng.Uniform(15)};
    if (rng.Bernoulli(0.7)) {
      const bool inserted = stores.table.Insert(t);
      for (TripleStore* s : stores.all()) {
        if (s != &stores.table) {
          EXPECT_EQ(s->Insert(t), inserted) << s->name();
        }
      }
    } else {
      const bool erased = stores.table.Erase(t);
      for (TripleStore* s : stores.all()) {
        if (s != &stores.table) {
          EXPECT_EQ(s->Erase(t), erased) << s->name();
        }
      }
    }
  }
  for (TripleStore* s : stores.all()) {
    EXPECT_EQ(s->size(), stores.table.size()) << s->name();
  }
  // The small-threshold delta store must actually have compacted, and
  // both delta stores must uphold their layering invariants mid-state.
  EXPECT_GT(stores.delta_compacting.CompactionCount(), 0u);
  std::string err;
  EXPECT_TRUE(stores.delta_compacting.CheckInvariants(&err)) << err;
  EXPECT_TRUE(stores.delta_staged.CheckInvariants(&err)) << err;
  // The facade upholds per-shard invariants plus subject routing.
  EXPECT_TRUE(stores.sharded.CheckInvariants(&err)) << err;
  // Probe all 8 pattern shapes.
  for (int mask = 0; mask < 8; ++mask) {
    for (int probe = 0; probe < 25; ++probe) {
      IdPattern q;
      if (mask & 1) q.s = 1 + rng.Uniform(16);
      if (mask & 2) q.p = 1 + rng.Uniform(9);
      if (mask & 4) q.o = 1 + rng.Uniform(16);
      ExpectAllEqual(&stores, q);
    }
  }
}

TEST_P(StoreEquivalenceTest, BulkLoadWorkload) {
  Rng rng(GetParam() ^ 0xb01d);
  IdTripleVec data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back(IdTriple{1 + rng.Uniform(40), 1 + rng.Uniform(12),
                            1 + rng.Uniform(40)});
  }
  StoreSet stores;
  for (TripleStore* s : stores.all()) {
    s->BulkLoad(data);
  }
  for (TripleStore* s : stores.all()) {
    EXPECT_EQ(s->size(), stores.table.size()) << s->name();
  }
  for (int mask = 0; mask < 8; ++mask) {
    for (int probe = 0; probe < 15; ++probe) {
      IdPattern q;
      if (mask & 1) q.s = 1 + rng.Uniform(41);
      if (mask & 2) q.p = 1 + rng.Uniform(13);
      if (mask & 4) q.o = 1 + rng.Uniform(41);
      ExpectAllEqual(&stores, q);
    }
  }
  std::string err;
  EXPECT_TRUE(stores.hexa.CheckInvariants(&err)) << err;
  EXPECT_TRUE(stores.delta_compacting.CheckInvariants(&err)) << err;
  EXPECT_TRUE(stores.delta_staged.CheckInvariants(&err)) << err;
}

TEST_P(StoreEquivalenceTest, CountsAgree) {
  Rng rng(GetParam() ^ 0xc0117);
  StoreSet stores;
  for (int i = 0; i < 1500; ++i) {
    IdTriple t{1 + rng.Uniform(10), 1 + rng.Uniform(5),
               1 + rng.Uniform(10)};
    for (TripleStore* s : stores.all()) {
      s->Insert(t);
    }
  }
  for (int probe = 0; probe < 100; ++probe) {
    IdPattern q;
    if (rng.Bernoulli(0.5)) q.s = 1 + rng.Uniform(11);
    if (rng.Bernoulli(0.5)) q.p = 1 + rng.Uniform(6);
    if (rng.Bernoulli(0.5)) q.o = 1 + rng.Uniform(11);
    const auto expect = stores.table.CountMatches(q);
    for (TripleStore* s : stores.all()) {
      EXPECT_EQ(s->CountMatches(q), expect) << s->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreEquivalenceTest,
                         ::testing::Values(11, 222, 3333, 44444));

}  // namespace
}  // namespace hexastore

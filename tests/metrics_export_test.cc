// End-to-end export tests for the PR-7 observability surface: a leveled
// DeltaHexastore and a durable store are churned, then the Prometheus
// text page, the JSON dump, GatherStats() and the HEXA_METRICS_JSON
// destructor dump are checked for the content docs/observability.md
// promises (and scripts/check_metrics_json.py validates in CI).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/graph.h"
#include "delta/delta_hexastore.h"
#include "query/bgp.h"
#include "query/profile.h"
#include "query/sparql_engine.h"
#include "wal/durable_store.h"

namespace hexastore {
namespace {

namespace fs = std::filesystem;

IdTriple T(std::uint32_t s, std::uint32_t p, std::uint32_t o) {
  return {Id{s}, Id{p}, Id{o}};
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Churns a store enough to seal, fold and base-merge.
template <typename Store>
void Churn(Store* store, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    store->Insert(T(i, i % 7, i % 31));
  }
  for (std::uint32_t i = 0; i < n; i += 3) {
    store->Erase(T(i, i % 7, i % 31));
  }
}

TEST(MetricsExportTest, DeltaPrometheusAndJson) {
  DeltaOptions options;
  options.compact_threshold = 64;
  options.l0_run_limit = 2;
  DeltaHexastore store(options);
  Churn(&store, 1000);
  (void)store.Contains(T(1, 1, 31));
  auto snap_handle = store.AcquireReadHandle();

  const std::string prom = store.MetricsText();
  EXPECT_NE(prom.find("# TYPE hexa_delta_staged_ops_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE hexa_delta_size_triples gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE hexa_insert_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("hexa_epoch_handles_acquired_total"),
            std::string::npos);

  const std::string json = store.MetricsJson();
  EXPECT_NE(json.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"hexa_delta_seals_total\""), std::string::npos);
  EXPECT_NE(json.find("\"p999_ns\""), std::string::npos);
  // The churn sealed and folded, so the trace retained events.
  EXPECT_NE(json.find("\"event\": \"seal\""), std::string::npos);
  EXPECT_NE(json.find("\"event\": \"fold\""), std::string::npos);
  EXPECT_GT(store.trace_ring().TotalRecorded(), 0u);
}

// GatherStats is the single coherent path: the struct views and the
// registry values it feeds must agree when the store is quiescent.
TEST(MetricsExportTest, GatherStatsMatchesRegistry) {
  DeltaOptions options;
  options.compact_threshold = 64;
  options.l0_run_limit = 2;
  DeltaHexastore store(options);
  Churn(&store, 500);

  const StatsSnapshot snap = store.GatherStats();
  EXPECT_EQ(snap.delta.compactions, store.CompactionCount());
  EXPECT_GT(snap.delta.staged_ops_total, 0u);
  EXPECT_GT(snap.delta.seals, 0u);
  EXPECT_FALSE(snap.has_wal);

  std::uint64_t staged = 0;
  ASSERT_TRUE(store.metrics_registry().CounterValue(
      "hexa_delta_staged_ops_total", &staged));
  EXPECT_EQ(staged, snap.delta.staged_ops_total);
  std::int64_t size_gauge = 0;
  ASSERT_TRUE(store.metrics_registry().GaugeValue("hexa_delta_size_triples",
                                                  &size_gauge));
  EXPECT_EQ(static_cast<std::size_t>(size_gauge), store.size());
  // Stats() and EpochCounters() are views over the same gather.
  EXPECT_EQ(store.Stats().staged_ops_total, snap.delta.staged_ops_total);
  EXPECT_EQ(store.EpochCounters().global_epoch, snap.epoch.global_epoch);
}

TEST(MetricsExportTest, GraphFacadeMetrics) {
  Graph g;
  g.Insert({Term::Iri("s"), Term::Iri("p"), Term::Iri("o")});
  g.Insert({Term::Iri("s"), Term::Iri("p"), Term::Iri("o2")});
  (void)g.Match(Term::Iri("s"), std::nullopt, std::nullopt);

  const std::string prom = g.MetricsText();
  EXPECT_NE(prom.find("hexa_graph_inserts_total 2"), std::string::npos);
  EXPECT_NE(prom.find("hexa_graph_matches_total 1"), std::string::npos);
  EXPECT_NE(prom.find("hexa_graph_size_triples 2"), std::string::npos);
  const std::string json = g.MetricsJson();
  EXPECT_NE(json.find("\"hexa_graph_dict_terms\": 4"), std::string::npos);
}

// A ProfileSink registered with the graph's registry surfaces the query
// class histograms and the slow-query ring in both exports — the shape
// the CI metrics-smoke job validates with
// scripts/check_metrics_json.py --require-queries.
TEST(MetricsExportTest, SlowQueryJsonSection) {
  // Without an attached sink the JSON schema still carries the key.
  {
    Graph g;
    EXPECT_NE(g.MetricsJson().find("\"slow_queries\": null"),
              std::string::npos);
  }

  // Declared before the graph so the sink outlives the registry render.
  ProfileSink sink(/*slow_threshold_ns=*/std::uint64_t{0});
  Graph g;
  sink.RegisterWith(&g.metrics_registry());
  g.Insert({Term::Iri("s"), Term::Iri("p"), Term::Iri("o")});

  const std::string query = "SELECT ?o WHERE { <s> <p> ?o }";
  QueryProfile profile;
  auto result = RunSparql(g.store(), g.dict(), query, &profile);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 1u);
  sink.Record(profile, query);

  const std::string prom = g.MetricsText();
  EXPECT_NE(prom.find("# TYPE hexa_query_sparql_latency_ns histogram"),
            std::string::npos);
  const std::string json = g.MetricsJson();
  EXPECT_NE(json.find("\"slow_queries\": {"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"sparql\""), std::string::npos);
  EXPECT_NE(json.find(query), std::string::npos);
}

// Durable churn: WAL counters, checkpoint trace events and the
// destructor-time HEXA_METRICS_JSON dump — the shape the CI
// metrics-smoke job validates with scripts/check_metrics_json.py. When
// the job pre-sets HEXA_METRICS_JSON the dump goes to (and stays at)
// that path so it can be checked and uploaded as an artifact.
TEST(MetricsExportTest, DurableChurnAndEnvDump) {
  const std::string dir =
      (fs::temp_directory_path() /
       (std::string("hexa_metrics_export_") + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  const char* preset = std::getenv("HEXA_METRICS_JSON");
  const bool external_dump = preset != nullptr && preset[0] != '\0';
  const std::string dump_path =
      external_dump ? std::string(preset) : dir + "_dump.json";
  fs::remove(dump_path);

  DurabilityOptions options;
  options.dir = dir;
  options.compact_threshold = 64;
  options.l0_run_limit = 2;
  ::setenv("HEXA_METRICS_JSON", dump_path.c_str(), 1);
  {
    auto opened = DurableDeltaHexastore::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    auto store = std::move(opened).value();
    Churn(store.get(), 1000);
    ASSERT_TRUE(store->Checkpoint().ok());

    const StatsSnapshot snap = store->GatherStats();
    EXPECT_TRUE(snap.has_wal);
    EXPECT_GT(snap.wal.records_appended, 0u);
    EXPECT_GT(snap.wal.fsyncs, 0u);
    EXPECT_GT(snap.wal.checkpoints, 0u);
    const std::string prom = store->MetricsText();
    EXPECT_NE(prom.find("hexa_wal_records_appended_total"),
              std::string::npos);
    EXPECT_NE(prom.find("hexa_wal_fsync_latency_ns"), std::string::npos);
    // Store destructs here, with HEXA_METRICS_JSON still set.
  }
  if (!external_dump) ::unsetenv("HEXA_METRICS_JSON");

  ASSERT_TRUE(fs::exists(dump_path));
  const std::string dump = ReadFile(dump_path);
  EXPECT_NE(dump.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(dump.find("\"hexa_delta_staged_ops_total\""), std::string::npos);
  EXPECT_NE(dump.find("\"hexa_wal_records_appended_total\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"hexa_epoch_generations_published_total\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"event\": \"checkpoint\""), std::string::npos);
  EXPECT_NE(dump.find("\"event\": \"recovery\""), std::string::npos);

  fs::remove_all(dir);
  if (!external_dump) fs::remove(dump_path);
}

// Delta churn plus a profiled query through a ProfileSink on the
// store's registry: the destructor-time dump carries the store families
// AND the query sections — the shape the CI metrics-smoke query step
// runs under HEXA_SLOW_QUERY_US=0 and validates with
// scripts/check_metrics_json.py --require-queries.
TEST(MetricsExportTest, QueryChurnAndEnvDump) {
  const char* preset = std::getenv("HEXA_METRICS_JSON");
  const bool external_dump = preset != nullptr && preset[0] != '\0';
  const std::string dump_path =
      external_dump
          ? std::string(preset)
          : (fs::temp_directory_path() /
             (std::string("hexa_query_dump_") + std::to_string(::getpid()) +
              ".json"))
                .string();
  fs::remove(dump_path);

  ::setenv("HEXA_METRICS_JSON", dump_path.c_str(), 1);
  {
    // The sink outlives the store: the destructor-time dump renders the
    // sink's histograms and slow-query ring.
    ProfileSink sink;  // threshold from HEXA_SLOW_QUERY_US (CI sets 0)
    Dictionary dict;
    DeltaOptions options;
    options.compact_threshold = 64;
    options.l0_run_limit = 2;
    DeltaHexastore store(options);
    sink.RegisterWith(&store.metrics_registry());
    for (int i = 0; i < 300; ++i) {
      store.Insert(dict.Encode({Term::Iri("s" + std::to_string(i)),
                                Term::Iri("p" + std::to_string(i % 5)),
                                Term::Iri("o" + std::to_string(i % 31))}));
    }

    QueryProfile profile;
    const ResultSet result = EvalBgpPinned(
        store, dict,
        {{PatternTerm::Variable("s"), PatternTerm::Bound(Term::Iri("p0")),
          PatternTerm::Variable("o")}},
        &profile);
    EXPECT_EQ(result.rows.size(), 60u);
    sink.Record(profile, "BGP ?s <p0> ?o");
    EXPECT_EQ(sink.histogram(QueryKind::kBgp)->Snapshot().count, 1u);
    // Store destructs here, with HEXA_METRICS_JSON still set.
  }
  if (!external_dump) ::unsetenv("HEXA_METRICS_JSON");

  ASSERT_TRUE(fs::exists(dump_path));
  const std::string dump = ReadFile(dump_path);
  EXPECT_NE(dump.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(dump.find("\"hexa_delta_staged_ops_total\""), std::string::npos);
  EXPECT_NE(dump.find("\"hexa_query_bgp_latency_ns\""), std::string::npos);
  EXPECT_NE(dump.find("\"slow_queries\": {"), std::string::npos);
  const char* slow_us = std::getenv("HEXA_SLOW_QUERY_US");
  if (slow_us != nullptr && std::string(slow_us) == "0") {
    // The CI query step captures everything; the entry must be whole.
    EXPECT_NE(dump.find("\"text\": \"BGP ?s <p0> ?o\""), std::string::npos);
    EXPECT_NE(dump.find("\"kind\": \"bgp\""), std::string::npos);
  }

  if (!external_dump) fs::remove(dump_path);
}

}  // namespace
}  // namespace hexastore

// Unit tests for the shared terminal-list pool.
#include <gtest/gtest.h>

#include "index/terminal_pool.h"

namespace hexastore {
namespace {

TEST(TerminalPoolTest, InsertAndFind) {
  TerminalListPool pool;
  EXPECT_TRUE(pool.Insert(ListFamily::kObjects, 1, 2, 3));
  const IdVec* list = pool.Find(ListFamily::kObjects, 1, 2);
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(*list, (IdVec{3}));
}

TEST(TerminalPoolTest, InsertRejectsDuplicate) {
  TerminalListPool pool;
  EXPECT_TRUE(pool.Insert(ListFamily::kObjects, 1, 2, 3));
  EXPECT_FALSE(pool.Insert(ListFamily::kObjects, 1, 2, 3));
  EXPECT_EQ(pool.Find(ListFamily::kObjects, 1, 2)->size(), 1u);
}

TEST(TerminalPoolTest, FamiliesAreIndependent) {
  TerminalListPool pool;
  pool.Insert(ListFamily::kObjects, 1, 2, 3);
  EXPECT_EQ(pool.Find(ListFamily::kPredicates, 1, 2), nullptr);
  EXPECT_EQ(pool.Find(ListFamily::kSubjects, 1, 2), nullptr);
  pool.Insert(ListFamily::kPredicates, 1, 2, 7);
  EXPECT_EQ(*pool.Find(ListFamily::kPredicates, 1, 2), (IdVec{7}));
  EXPECT_EQ(*pool.Find(ListFamily::kObjects, 1, 2), (IdVec{3}));
}

TEST(TerminalPoolTest, KeyOrderMatters) {
  TerminalListPool pool;
  pool.Insert(ListFamily::kObjects, 1, 2, 3);
  EXPECT_EQ(pool.Find(ListFamily::kObjects, 2, 1), nullptr);
}

TEST(TerminalPoolTest, ListsStaySorted) {
  TerminalListPool pool;
  pool.Insert(ListFamily::kSubjects, 5, 6, 30);
  pool.Insert(ListFamily::kSubjects, 5, 6, 10);
  pool.Insert(ListFamily::kSubjects, 5, 6, 20);
  EXPECT_EQ(*pool.Find(ListFamily::kSubjects, 5, 6), (IdVec{10, 20, 30}));
}

TEST(TerminalPoolTest, EraseDropsEmptyList) {
  TerminalListPool pool;
  pool.Insert(ListFamily::kObjects, 1, 2, 3);
  pool.Insert(ListFamily::kObjects, 1, 2, 4);
  EXPECT_TRUE(pool.Erase(ListFamily::kObjects, 1, 2, 3));
  EXPECT_NE(pool.Find(ListFamily::kObjects, 1, 2), nullptr);
  EXPECT_TRUE(pool.Erase(ListFamily::kObjects, 1, 2, 4));
  EXPECT_EQ(pool.Find(ListFamily::kObjects, 1, 2), nullptr);
  EXPECT_EQ(pool.ListCount(ListFamily::kObjects), 0u);
}

TEST(TerminalPoolTest, EraseMissingReturnsFalse) {
  TerminalListPool pool;
  EXPECT_FALSE(pool.Erase(ListFamily::kObjects, 1, 2, 3));
  pool.Insert(ListFamily::kObjects, 1, 2, 3);
  EXPECT_FALSE(pool.Erase(ListFamily::kObjects, 1, 2, 99));
  EXPECT_FALSE(pool.Erase(ListFamily::kObjects, 9, 9, 3));
}

TEST(TerminalPoolTest, ContainsChecksThird) {
  TerminalListPool pool;
  pool.Insert(ListFamily::kPredicates, 1, 2, 3);
  EXPECT_TRUE(pool.Contains(ListFamily::kPredicates, 1, 2, 3));
  EXPECT_FALSE(pool.Contains(ListFamily::kPredicates, 1, 2, 4));
  EXPECT_FALSE(pool.Contains(ListFamily::kPredicates, 1, 3, 3));
}

TEST(TerminalPoolTest, Counts) {
  TerminalListPool pool;
  pool.Insert(ListFamily::kObjects, 1, 2, 3);
  pool.Insert(ListFamily::kObjects, 1, 2, 4);
  pool.Insert(ListFamily::kObjects, 5, 6, 7);
  EXPECT_EQ(pool.ListCount(ListFamily::kObjects), 2u);
  EXPECT_EQ(pool.EntryCount(ListFamily::kObjects), 3u);
  EXPECT_EQ(pool.EntryCount(ListFamily::kSubjects), 0u);
}

TEST(TerminalPoolTest, ClearRemovesEverything) {
  TerminalListPool pool;
  pool.Insert(ListFamily::kObjects, 1, 2, 3);
  pool.Insert(ListFamily::kSubjects, 1, 2, 3);
  pool.Clear();
  EXPECT_EQ(pool.ListCount(ListFamily::kObjects), 0u);
  EXPECT_EQ(pool.ListCount(ListFamily::kSubjects), 0u);
}

TEST(TerminalPoolTest, GetOrCreateThenSortUniqueAll) {
  TerminalListPool pool;
  IdVec* list = pool.GetOrCreate(ListFamily::kObjects, 1, 2);
  list->push_back(9);
  list->push_back(3);
  list->push_back(9);
  pool.SortUniqueAll();
  EXPECT_EQ(*pool.Find(ListFamily::kObjects, 1, 2), (IdVec{3, 9}));
}

TEST(TerminalPoolTest, MemoryBytesGrow) {
  TerminalListPool pool;
  std::size_t before = pool.MemoryBytes();
  for (Id i = 1; i <= 100; ++i) {
    pool.Insert(ListFamily::kObjects, i, i + 1, i + 2);
  }
  EXPECT_GT(pool.MemoryBytes(), before);
  EXPECT_EQ(pool.MemoryBytes(),
            pool.MemoryBytes(ListFamily::kObjects) +
                pool.MemoryBytes(ListFamily::kPredicates) +
                pool.MemoryBytes(ListFamily::kSubjects));
}

TEST(IdPairHashTest, DistinguishesOrder) {
  IdPairHash h;
  EXPECT_NE(h(IdPair{1, 2}), h(IdPair{2, 1}));
}

}  // namespace
}  // namespace hexastore

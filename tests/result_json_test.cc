// Golden-string tests for the W3C SPARQL 1.1 JSON results serializer
// (query/result_json.h): term-kind mapping, lang/datatype attributes,
// bnode prefix stripping, numeric aggregate columns, unbound-cell
// omission and RFC 8259 escaping.
#include <gtest/gtest.h>

#include <string>

#include "core/graph.h"
#include "query/result_json.h"
#include "query/sparql_engine.h"

namespace hexastore {
namespace {

TEST(JsonEscapeTest, TwoCharEscapesAndControlBytes) {
  std::string out;
  AppendJsonEscaped("a\"b\\c\n\t\r\f\b", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t\\r\\f\\b");
  out.clear();
  AppendJsonEscaped(std::string("x\x01y\x1f", 4), &out);
  EXPECT_EQ(out, "x\\u0001y\\u001f");
}

TEST(JsonEscapeTest, PlainTextPassesThrough) {
  std::string out;
  AppendJsonEscaped("héllo <world> & 'friends'", &out);
  EXPECT_EQ(out, "héllo <world> & 'friends'");
}

TEST(BooleanResultTest, Golden) {
  EXPECT_EQ(BooleanResultToJson(true), "{\"head\":{},\"boolean\":true}");
  EXPECT_EQ(BooleanResultToJson(false), "{\"head\":{},\"boolean\":false}");
}

class ResultJsonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(graph_
                    .LoadNTriples(
                        "<http://x/alice> <http://x/name> \"Alice\" .\n"
                        "<http://x/alice> <http://x/bio> "
                        "\"chat\"@fr .\n"
                        "<http://x/alice> <http://x/age> "
                        "\"30\"^^<http://www.w3.org/2001/XMLSchema#integer> "
                        ".\n"
                        "_:b0 <http://x/name> \"Blank\" .\n"
                        "<http://x/alice> <http://x/quote> "
                        "\"say \\\"hi\\\"\" .\n")
                    .ok());
  }

  std::string RunJson(const std::string& query) {
    auto r = RunSparql(graph_.store(), graph_.dict(), query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? ResultSetToJson(r.value(), graph_.dict()) : "";
  }

  Graph graph_;
};

TEST_F(ResultJsonTest, UriAndPlainLiteral) {
  EXPECT_EQ(
      RunJson("SELECT ?s ?n WHERE { ?s <http://x/name> ?n . "
              "FILTER(?n = \"Alice\") }"),
      "{\"head\":{\"vars\":[\"s\",\"n\"]},\"results\":{\"bindings\":["
      "{\"s\":{\"type\":\"uri\",\"value\":\"http://x/alice\"},"
      "\"n\":{\"type\":\"literal\",\"value\":\"Alice\"}}]}}");
}

TEST_F(ResultJsonTest, LanguageTaggedLiteral) {
  EXPECT_EQ(
      RunJson("SELECT ?b WHERE { <http://x/alice> <http://x/bio> ?b }"),
      "{\"head\":{\"vars\":[\"b\"]},\"results\":{\"bindings\":["
      "{\"b\":{\"type\":\"literal\",\"value\":\"chat\","
      "\"xml:lang\":\"fr\"}}]}}");
}

TEST_F(ResultJsonTest, TypedLiteral) {
  EXPECT_EQ(
      RunJson("SELECT ?a WHERE { <http://x/alice> <http://x/age> ?a }"),
      "{\"head\":{\"vars\":[\"a\"]},\"results\":{\"bindings\":["
      "{\"a\":{\"type\":\"literal\",\"value\":\"30\",\"datatype\":"
      "\"http://www.w3.org/2001/XMLSchema#integer\"}}]}}");
}

TEST_F(ResultJsonTest, BnodeStripsPrefix) {
  EXPECT_EQ(
      RunJson("SELECT ?s WHERE { ?s <http://x/name> ?n . "
              "FILTER(?n = \"Blank\") }"),
      "{\"head\":{\"vars\":[\"s\"]},\"results\":{\"bindings\":["
      "{\"s\":{\"type\":\"bnode\",\"value\":\"b0\"}}]}}");
}

TEST_F(ResultJsonTest, EscapedLiteralValue) {
  EXPECT_EQ(
      RunJson("SELECT ?q WHERE { <http://x/alice> <http://x/quote> ?q }"),
      "{\"head\":{\"vars\":[\"q\"]},\"results\":{\"bindings\":["
      "{\"q\":{\"type\":\"literal\",\"value\":\"say \\\"hi\\\"\"}}]}}");
}

TEST_F(ResultJsonTest, NumericAggregateColumn) {
  // COUNT produces a numeric column, rendered as an xsd:integer literal.
  EXPECT_EQ(
      RunJson("SELECT (COUNT(?s) AS ?n) WHERE { ?s <http://x/name> ?o }"),
      "{\"head\":{\"vars\":[\"n\"]},\"results\":{\"bindings\":["
      "{\"n\":{\"type\":\"literal\",\"value\":\"2\",\"datatype\":"
      "\"http://www.w3.org/2001/XMLSchema#integer\"}}]}}");
}

TEST_F(ResultJsonTest, EmptyResultSet) {
  EXPECT_EQ(
      RunJson("SELECT ?s WHERE { ?s <http://x/nosuch> ?o }"),
      "{\"head\":{\"vars\":[\"s\"]},\"results\":{\"bindings\":[]}}");
}

TEST(ResultJsonDirectTest, UnboundCellOmitted) {
  // An unresolvable id renders as an absent key, per spec.
  Dictionary dict;
  ResultSet set;
  set.vars.Intern("x");
  set.vars.Intern("y");
  const Id alice = dict.Intern(Term::Iri("http://x/alice"));
  set.rows.push_back({alice, kInvalidId});
  EXPECT_EQ(ResultSetToJson(set, dict),
            "{\"head\":{\"vars\":[\"x\",\"y\"]},\"results\":{\"bindings\":["
            "{\"x\":{\"type\":\"uri\",\"value\":\"http://x/alice\"}}]}}");
}

}  // namespace
}  // namespace hexastore

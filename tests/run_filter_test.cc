// Unit tests for the prefix Bloom filter over sealed delta runs: no
// false negatives across every hexastore prefix shape, sane false-
// positive rates, skip/false-positive accounting through
// DeltaStore::FilteredLookup, and the critical verdict-chain semantics —
// a filter skip means "no op-table entry", never "no pattern tombstone".
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "delta/delta_hexastore.h"
#include "delta/delta_store.h"
#include "delta/run_filter.h"

namespace hexastore {
namespace {

IdTriple RandomTriple(std::mt19937_64& rng, Id universe) {
  std::uniform_int_distribution<Id> d(1, universe);
  return IdTriple{d(rng), d(rng), d(rng)};
}

TEST(RunFilterTest, NoFalseNegativesAcrossPrefixShapes) {
  std::mt19937_64 rng(0xF117E4);
  IdTripleVec keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(RandomTriple(rng, 1u << 20));
  }
  RunFilter filter(keys.size(), /*bits_per_key=*/10);
  for (const IdTriple& t : keys) {
    filter.AddTriple(t);
  }
  for (const IdTriple& t : keys) {
    EXPECT_TRUE(filter.MayContain(t));
    // Every bound-position combination of the triple must pass.
    EXPECT_TRUE(filter.MayContainPrefix(IdPattern{t.s, 0, 0}));
    EXPECT_TRUE(filter.MayContainPrefix(IdPattern{0, t.p, 0}));
    EXPECT_TRUE(filter.MayContainPrefix(IdPattern{0, 0, t.o}));
    EXPECT_TRUE(filter.MayContainPrefix(IdPattern{t.s, t.p, 0}));
    EXPECT_TRUE(filter.MayContainPrefix(IdPattern{0, t.p, t.o}));
    EXPECT_TRUE(filter.MayContainPrefix(IdPattern{t.s, 0, t.o}));
    EXPECT_TRUE(filter.MayContainPrefix(IdPattern{t.s, t.p, t.o}));
  }
}

TEST(RunFilterTest, UnboundPatternAlwaysPasses) {
  RunFilter filter(4, 10);
  EXPECT_TRUE(filter.MayContainPrefix(IdPattern{}));
}

TEST(RunFilterTest, FalsePositiveRateIsSane) {
  std::mt19937_64 rng(0xBEEF);
  // Dense ids in [1, 1000]; absent probes drawn from a disjoint range.
  RunFilter filter(1000, /*bits_per_key=*/10);
  for (int i = 0; i < 1000; ++i) {
    filter.AddTriple(RandomTriple(rng, 1000));
  }
  int positives = 0;
  const int kProbes = 5000;
  for (int i = 0; i < kProbes; ++i) {
    std::uniform_int_distribution<Id> d(1u << 20, 1u << 21);
    const IdTriple absent{d(rng), d(rng), d(rng)};
    if (filter.MayContain(absent)) {
      ++positives;
    }
  }
  // 10 bits/key double-hashed should be far below 10%; allow slack.
  EXPECT_LT(static_cast<double>(positives) / kProbes, 0.1);
}

TEST(RunFilterTest, FilteredLookupCountsSkipsAndFalsePositives) {
  DeltaStore store;
  auto counters = std::make_shared<RunFilterCounters>();
  store.set_filter_counters(counters);
  for (Id i = 1; i <= 100; ++i) {
    store.StageInsert(IdTriple{i, i + 1, i + 2}, /*base_present=*/false);
  }
  store.EnableFilter(10);
  store.Freeze();

  // Present keys answer kInserted through the filter.
  for (Id i = 1; i <= 100; ++i) {
    EXPECT_EQ(store.FilteredLookup(IdTriple{i, i + 1, i + 2}),
              DeltaStore::Presence::kInserted);
  }
  // Distant absent keys mostly skip; any pass-through is counted as a
  // false positive and still answers kUnknown.
  for (Id i = 1; i <= 1000; ++i) {
    EXPECT_EQ(store.FilteredLookup(IdTriple{i + (1u << 30), i, i}),
              DeltaStore::Presence::kUnknown);
  }
  const auto probes = counters->probes.Value();
  const auto skips = counters->skips.Value();
  const auto fps = counters->false_positives.Value();
  EXPECT_EQ(probes, 1100u);
  EXPECT_GT(skips, 900u);  // FP rate well under 10%
  EXPECT_EQ(skips + fps, 1000u);
}

TEST(RunFilterTest, PrefixProbeSkipsScanOfForeignRun) {
  DeltaStore store;
  auto counters = std::make_shared<RunFilterCounters>();
  store.set_filter_counters(counters);
  for (Id i = 1; i <= 50; ++i) {
    store.StageInsert(IdTriple{i, 7, i}, /*base_present=*/false);
  }
  store.EnableFilter(10);
  store.Freeze();
  // A predicate this run never staged: the prefix probe skips the scan.
  const auto skips_before = counters->skips.Value();
  EXPECT_EQ(store.CountInserts(IdPattern{0, 123456789, 0}), 0u);
  EXPECT_GE(counters->skips.Value(), skips_before);
  // A staged predicate still scans and finds everything.
  EXPECT_EQ(store.CountInserts(IdPattern{0, 7, 0}), 50u);
}

TEST(RunFilterTest, FilterSkipStillReportsPatternTombstone) {
  // The regression this subsystem must never reintroduce: a run holding
  // a pattern tombstone for predicate p has NO op-table entry for a base
  // triple with p, so a perfect (false-positive-free) filter skips the
  // table probe — and the verdict must still be kErased, not kUnknown.
  DeltaStore store;
  store.set_filter_counters(std::make_shared<RunFilterCounters>());
  store.StagePatternErase(5);
  for (Id i = 1; i <= 64; ++i) {
    store.StageInsert(IdTriple{i, 7, i}, /*base_present=*/false);
  }
  store.EnableFilter(10);
  store.Freeze();
  ASSERT_NE(store.MaybeFilter(), nullptr);
  const IdTriple base_resident{999, 5, 999};
  ASSERT_FALSE(store.MaybeFilter()->MayContain(base_resident));
  EXPECT_EQ(store.FilteredLookup(base_resident),
            DeltaStore::Presence::kErased);
}

TEST(RunFilterTest, StoreLevelSkippedRunKeepsTombstoneVerdict) {
  // Same contract end-to-end: a sealed L0 run carries a pattern
  // tombstone for p; the base triple with p must stay erased even
  // though the run's filter (correctly) reports it absent.
  DeltaOptions options;
  options.compact_threshold = 8;
  options.l0_run_limit = 4;
  options.l1_base_fraction = 100.0;  // never base-merge in this test
  DeltaHexastore store(options);
  IdTripleVec base;
  base.push_back(IdTriple{1, 5, 1});
  base.push_back(IdTriple{2, 6, 2});
  store.BulkLoad(base);

  ASSERT_EQ(store.ErasePattern(IdPattern{0, 5, 0}), 1u);
  // Fill the active buffer past the threshold so the pattern tombstone
  // seals into an L0 run.
  for (Id i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.Insert(IdTriple{100 + i, 7, 100 + i}));
  }
  ASSERT_GT(store.Stats().l0_runs, 0u);

  EXPECT_FALSE(store.Contains(IdTriple{1, 5, 1}));
  EXPECT_TRUE(store.Contains(IdTriple{2, 6, 2}));
  EXPECT_EQ(store.EstimateMatches(IdPattern{0, 5, 0}), 0u);
  const DeltaStats stats = store.Stats();
  EXPECT_GT(stats.filter_probes, 0u);
}

TEST(RunFilterTest, MemoryBytesGrowsWithKeys) {
  RunFilter small(10, 10);
  RunFilter big(10000, 10);
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
  EXPECT_GT(small.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace hexastore

// Tests for the consolidated HEXA_* environment reader
// (server/store_options.h): FromEnv mapping into all three option
// structs, unparsable-value repair notes, and ServerOptions::Normalize
// clamping.
#include <gtest/gtest.h>

#include <cstdlib>

#include "server/store_options.h"

namespace hexastore {
namespace {

// Clears every variable FromEnv reads, so tests see only what they set.
class StoreOptionsTest : public ::testing::Test {
 protected:
  void SetUp() override { ClearAll(); }
  void TearDown() override { ClearAll(); }

  static void ClearAll() {
    for (const char* name :
         {"HEXA_COMPACT_THRESHOLD", "HEXA_BG_COMPACTION",
          "HEXA_L0_RUN_LIMIT", "HEXA_L1_BASE_FRACTION", "HEXA_MEM_BUDGET",
          "HEXA_FILTER_BITS", "HEXA_WAL_DIR", "HEXA_WAL_MODE",
          "HEXA_WAL_SEGMENT_BYTES", "HEXA_WAL_BATCH_BYTES",
          "HEXA_BG_CHECKPOINTS", "HEXA_HOST", "HEXA_PORT",
          "HEXA_SERVER_THREADS", "HEXA_SERVER_QUEUE",
          "HEXA_QUERY_DEADLINE_MS", "HEXA_PLAN_CACHE_CAP",
          "HEXA_PLAN_CACHE_QERR", "HEXA_MAX_REQUEST_BYTES",
          "HEXA_SHARDS"}) {
      ::unsetenv(name);
    }
  }
};

TEST_F(StoreOptionsTest, DefaultsWhenEnvironmentIsEmpty) {
  std::string notes;
  StoreOptions options = StoreOptions::FromEnv(&notes);
  EXPECT_TRUE(notes.empty()) << notes;
  EXPECT_FALSE(options.durable);
  EXPECT_EQ(options.server.host, "127.0.0.1");
  EXPECT_EQ(options.server.port, 8585);
  EXPECT_EQ(options.server.threads, 4u);
  EXPECT_EQ(options.server.queue_depth, 64u);
  EXPECT_EQ(options.server.query_deadline_ms, 0u);
  EXPECT_EQ(options.delta.compact_threshold,
            DeltaOptions{}.compact_threshold);
}

TEST_F(StoreOptionsTest, StoreShapeKnobsReachDeltaAndDurability) {
  ::setenv("HEXA_COMPACT_THRESHOLD", "123", 1);
  ::setenv("HEXA_BG_COMPACTION", "1", 1);
  ::setenv("HEXA_L0_RUN_LIMIT", "3", 1);
  StoreOptions options = StoreOptions::FromEnv();
  EXPECT_EQ(options.delta.compact_threshold, 123u);
  EXPECT_TRUE(options.delta.background_compaction);
  EXPECT_EQ(options.delta.l0_run_limit, 3u);
  // The same shape applies to the durable configuration: one store
  // geometry regardless of whether the WAL wrapper is in front.
  EXPECT_EQ(options.durability.compact_threshold, 123u);
  EXPECT_TRUE(options.durability.background_compaction);
  EXPECT_EQ(options.durability.l0_run_limit, 3u);
}

TEST_F(StoreOptionsTest, ShardsKnob) {
  // Default: unsharded.
  EXPECT_EQ(StoreOptions::FromEnv().shards, 1u);
  ::setenv("HEXA_SHARDS", "4", 1);
  std::string notes;
  EXPECT_EQ(StoreOptions::FromEnv(&notes).shards, 4u);
  EXPECT_TRUE(notes.empty()) << notes;
  // Unparsable keeps the default and notes the repair.
  ::setenv("HEXA_SHARDS", "many", 1);
  notes.clear();
  EXPECT_EQ(StoreOptions::FromEnv(&notes).shards, 1u);
  EXPECT_NE(notes.find("HEXA_SHARDS"), std::string::npos) << notes;
  // Zero is clamped to 1 (a facade always has at least one shard).
  ::setenv("HEXA_SHARDS", "0", 1);
  notes.clear();
  EXPECT_EQ(StoreOptions::FromEnv(&notes).shards, 1u);
  EXPECT_NE(notes.find("shards=0"), std::string::npos) << notes;
}

TEST_F(StoreOptionsTest, WalDirImpliesDurable) {
  ::setenv("HEXA_WAL_DIR", "/tmp/hexa-test-wal", 1);
  ::setenv("HEXA_WAL_MODE", "per-commit", 1);
  StoreOptions options = StoreOptions::FromEnv();
  EXPECT_TRUE(options.durable);
  EXPECT_EQ(options.durability.dir, "/tmp/hexa-test-wal");
  EXPECT_EQ(options.durability.mode, DurabilityMode::kPerCommit);
}

TEST_F(StoreOptionsTest, ServerKnobs) {
  ::setenv("HEXA_HOST", "0.0.0.0", 1);
  ::setenv("HEXA_PORT", "9191", 1);
  ::setenv("HEXA_SERVER_THREADS", "8", 1);
  ::setenv("HEXA_SERVER_QUEUE", "16", 1);
  ::setenv("HEXA_QUERY_DEADLINE_MS", "250", 1);
  ::setenv("HEXA_PLAN_CACHE_CAP", "32", 1);
  ::setenv("HEXA_PLAN_CACHE_QERR", "3.5", 1);
  StoreOptions options = StoreOptions::FromEnv();
  EXPECT_EQ(options.server.host, "0.0.0.0");
  EXPECT_EQ(options.server.port, 9191);
  EXPECT_EQ(options.server.threads, 8u);
  EXPECT_EQ(options.server.queue_depth, 16u);
  EXPECT_EQ(options.server.query_deadline_ms, 250u);
  EXPECT_EQ(options.server.plan_cache_capacity, 32u);
  EXPECT_DOUBLE_EQ(options.server.plan_cache_q_error, 3.5);
}

TEST_F(StoreOptionsTest, UnparsableValueKeepsDefaultAndNotes) {
  ::setenv("HEXA_SERVER_THREADS", "lots", 1);
  std::string notes;
  StoreOptions options = StoreOptions::FromEnv(&notes);
  EXPECT_EQ(options.server.threads, 4u);
  EXPECT_NE(notes.find("HEXA_SERVER_THREADS"), std::string::npos) << notes;
}

TEST_F(StoreOptionsTest, NormalizeRepairsInvalidServerOptions) {
  ServerOptions server;
  server.host = "";
  server.threads = 0;
  server.queue_depth = 0;
  server.plan_cache_capacity = 0;
  server.plan_cache_q_error = 0.5;  // < 1 is meaningless for a q-error
  server.max_request_bytes = 16;    // cannot fit a request line
  std::string note = server.Normalize();
  EXPECT_FALSE(note.empty());
  EXPECT_EQ(server.host, "127.0.0.1");
  EXPECT_GT(server.threads, 0u);
  EXPECT_GT(server.queue_depth, 0u);
  EXPECT_GT(server.plan_cache_capacity, 0u);
  EXPECT_GE(server.plan_cache_q_error, 1.0);
  EXPECT_GE(server.max_request_bytes, 1024u);
}

TEST_F(StoreOptionsTest, NormalizeIsIdempotentOnValidOptions) {
  ServerOptions server;
  EXPECT_EQ(server.Normalize(), "");
}

}  // namespace
}  // namespace hexastore

// Unit tests for the conventional triples-table store (the oracle).
#include <gtest/gtest.h>

#include "baseline/triple_table.h"

namespace hexastore {
namespace {

TEST(TripleTableTest, InsertEraseContains) {
  TripleTableStore store;
  EXPECT_TRUE(store.Insert({1, 2, 3}));
  EXPECT_FALSE(store.Insert({1, 2, 3}));
  EXPECT_TRUE(store.Contains({1, 2, 3}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Erase({1, 2, 3}));
  EXPECT_FALSE(store.Erase({1, 2, 3}));
  EXPECT_EQ(store.size(), 0u);
}

TEST(TripleTableTest, ScanPatterns) {
  TripleTableStore store;
  store.Insert({1, 2, 3});
  store.Insert({1, 2, 4});
  store.Insert({1, 5, 3});
  store.Insert({2, 2, 3});

  EXPECT_EQ(store.Match(IdPattern{}).size(), 4u);
  EXPECT_EQ(store.Match({1, kInvalidId, kInvalidId}).size(), 3u);
  EXPECT_EQ(store.Match({1, 2, kInvalidId}).size(), 2u);
  EXPECT_EQ(store.Match({kInvalidId, 2, 3}),
            (IdTripleVec{{1, 2, 3}, {2, 2, 3}}));
  EXPECT_EQ(store.Match({kInvalidId, kInvalidId, 4}),
            (IdTripleVec{{1, 2, 4}}));
  EXPECT_EQ(store.Match({1, 2, 3}), (IdTripleVec{{1, 2, 3}}));
}

TEST(TripleTableTest, SubjectRangeScanDoesNotMissBoundaries) {
  TripleTableStore store;
  // Neighbouring subjects must not leak into a subject-bound scan.
  store.Insert({1, 9, 9});
  store.Insert({2, 1, 1});
  store.Insert({2, 9, 9});
  store.Insert({3, 1, 1});
  EXPECT_EQ(store.Match({2, kInvalidId, kInvalidId}),
            (IdTripleVec{{2, 1, 1}, {2, 9, 9}}));
}

TEST(TripleTableTest, MemoryGrowsLinearly) {
  TripleTableStore store;
  for (Id i = 1; i <= 100; ++i) {
    store.Insert({i, 1, i});
  }
  std::size_t m100 = store.MemoryBytes();
  for (Id i = 101; i <= 200; ++i) {
    store.Insert({i, 1, i});
  }
  EXPECT_NEAR(static_cast<double>(store.MemoryBytes()),
              static_cast<double>(2 * m100), static_cast<double>(m100) / 10);
}

TEST(TripleTableTest, Name) {
  EXPECT_EQ(TripleTableStore().name(), "TripleTable");
}

}  // namespace
}  // namespace hexastore

// Unit tests for the observability primitives (src/obs/): counters,
// gauges, the log-scale latency histogram (percentiles pinned against a
// sorted-vector oracle), the metrics registry and its exports, the
// scoped timer with the HEXA_METRICS toggle, and the trace ring
// (wraparound + concurrent writers).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace_ring.h"

namespace hexastore {
namespace obs {
namespace {

// Restores the metrics toggle even when a test fails mid-way.
class MetricsToggle {
 public:
  explicit MetricsToggle(bool enabled) { SetMetricsEnabledForTesting(enabled); }
  ~MetricsToggle() { SetMetricsEnabledForTesting(true); }
};

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
}

// The exact order statistic must land inside (or at the clamped edge
// of) the bucket the interpolated percentile came from: the histogram's
// answer is within a factor of 2 of the truth, the bound the header
// documents.
TEST(HistogramTest, PercentileWithinBucketOfOracle) {
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(8.0, 2.0);  // ~3us median, long tail
  LatencyHistogram hist;
  std::vector<std::uint64_t> oracle;
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<std::uint64_t>(dist(rng));
    hist.Record(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());
  const HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count, oracle.size());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(q * oracle.size())));
    const double exact = static_cast<double>(oracle[rank - 1]);
    const double approx = hist.Snapshot().Percentile(q);
    // Same power-of-two bucket: approx in [exact/2, 2*exact].
    EXPECT_GE(approx, exact / 2.0) << "q=" << q;
    EXPECT_LE(approx, exact * 2.0) << "q=" << q;
  }
  EXPECT_EQ(snap.max, oracle.back());
  EXPECT_LE(snap.Percentile(1.0), static_cast<double>(snap.max));
}

TEST(HistogramTest, EmptyAndSingleValue) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Snapshot().P99(), 0.0);
  EXPECT_EQ(hist.Snapshot().Mean(), 0.0);
  hist.Record(100);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 100u);
  EXPECT_EQ(snap.max, 100u);
  // One value: every percentile is clamped to it.
  EXPECT_LE(snap.P999(), 100.0);
  EXPECT_GT(snap.P50(), 0.0);
}

TEST(HistogramTest, MergeAccumulates) {
  LatencyHistogram a;
  LatencyHistogram b(/*sample_shift=*/3);
  a.Record(10);
  a.Record(20);
  b.Record(1000);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 1030u);
  EXPECT_EQ(merged.max, 1000u);
  // The coarser sampling label wins.
  EXPECT_EQ(merged.sample_shift, 3u);
}

TEST(HistogramTest, SamplingGateSingleThreaded) {
  LatencyHistogram hist(/*sample_shift=*/4);
  int sampled = 0;
  for (int i = 0; i < 160; ++i) {
    if (hist.Tick()) ++sampled;
  }
  // Single-threaded the racy tick counter is exact: 1-in-16.
  EXPECT_EQ(sampled, 10);
  LatencyHistogram all(/*sample_shift=*/0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(all.Tick());
}

TEST(HistogramTest, ResetZeroesEverything) {
  LatencyHistogram hist(/*sample_shift=*/2);
  hist.Tick();
  hist.Record(123);
  hist.Reset();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_TRUE(hist.Tick());  // tick phase restarts at sampled
}

TEST(ScopedTimerTest, RecordsWhenEnabled) {
  MetricsToggle toggle(true);
  LatencyHistogram hist;
  {
    ScopedTimer timer(&hist);
  }
  EXPECT_EQ(hist.Snapshot().count, 1u);
}

TEST(ScopedTimerTest, DisabledRecordsNothing) {
  MetricsToggle toggle(false);
  LatencyHistogram hist;
  {
    ScopedTimer timer(&hist);
  }
  EXPECT_EQ(hist.Snapshot().count, 0u);
}

TEST(ScopedTimerTest, NullHistogramIsNoop) {
  ScopedTimer timer(nullptr);  // must not crash
}

TEST(RegistryTest, LookupAndRender) {
  MetricsRegistry registry;
  Counter* c = registry.AddCounter("test_ops_total", "ops");
  Gauge* g = registry.AddGauge("test_depth", "queue depth");
  LatencyHistogram* h = registry.AddHistogram("test_latency_ns", "latency");
  c->Add(7);
  g->Set(-2);
  h->Record(100);
  h->Record(3000);

  std::uint64_t cv = 0;
  std::int64_t gv = 0;
  EXPECT_TRUE(registry.CounterValue("test_ops_total", &cv));
  EXPECT_EQ(cv, 7u);
  EXPECT_TRUE(registry.GaugeValue("test_depth", &gv));
  EXPECT_EQ(gv, -2);
  EXPECT_FALSE(registry.CounterValue("missing", &cv));

  const std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE test_ops_total counter"), std::string::npos);
  EXPECT_NE(prom.find("test_ops_total 7"), std::string::npos);
  EXPECT_NE(prom.find("test_depth -2"), std::string::npos);
  EXPECT_NE(prom.find("test_latency_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("test_latency_ns_sum 3100"), std::string::npos);

  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"test_ops_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test_depth\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"trace\": null"), std::string::npos);
}

TEST(RegistryTest, ExternalRegistrationAndReregistration) {
  MetricsRegistry registry;
  Counter external;
  external.Add(3);
  registry.RegisterCounter("ext_total", "first", &external);
  // Re-registering the same name replaces the entry instead of
  // duplicating it.
  Counter replacement;
  replacement.Add(9);
  registry.RegisterCounter("ext_total", "second", &replacement);
  std::uint64_t v = 0;
  ASSERT_TRUE(registry.CounterValue("ext_total", &v));
  EXPECT_EQ(v, 9u);
  const std::string prom = registry.RenderPrometheus();
  EXPECT_EQ(prom.find("first"), std::string::npos);
}

TEST(RegistryTest, JsonFileWriteAndEnvDump) {
  MetricsRegistry registry;
  registry.AddCounter("file_total", "c")->Add(5);
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/obs_test_metrics.json";
  ASSERT_TRUE(registry.WriteJsonFile(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"file_total\": 5"), std::string::npos);

  const std::string env_path = dir + "/obs_test_env_dump.json";
  ::setenv("HEXA_METRICS_JSON", env_path.c_str(), 1);
  registry.DumpToEnvPathIfSet();
  ::unsetenv("HEXA_METRICS_JSON");
  EXPECT_TRUE(std::filesystem::exists(env_path));
  std::filesystem::remove(path);
  std::filesystem::remove(env_path);
}

TEST(TraceRingTest, RecordsAndSnapshotsInOrder) {
  MetricsToggle toggle(true);
  TraceRing ring(16);
  ring.Record(TraceEvent::kSeal, "threshold", 10, 100);
  ring.Record(TraceEvent::kFold, "sync", 20, 200);
  const std::vector<TraceRecord> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event, TraceEvent::kSeal);
  EXPECT_STREQ(events[0].reason, "threshold");
  EXPECT_EQ(events[0].duration_ns, 10u);
  EXPECT_EQ(events[0].value, 100u);
  EXPECT_EQ(events[1].event, TraceEvent::kFold);
  EXPECT_LT(events[0].ticket, events[1].ticket);
  EXPECT_LE(events[0].timestamp_ns, events[1].timestamp_ns);
}

TEST(TraceRingTest, WraparoundKeepsNewestCapacityEvents) {
  MetricsToggle toggle(true);
  TraceRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ring.Record(TraceEvent::kPublish, "writer", 0, i);
  }
  EXPECT_EQ(ring.TotalRecorded(), 100u);
  const std::vector<TraceRecord> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first walk of the newest `capacity` tickets.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ticket, 92 + i);
    EXPECT_EQ(events[i].value, 92 + i);
  }
}

TEST(TraceRingTest, DisabledMetricsDropRecords) {
  MetricsToggle toggle(false);
  TraceRing ring(8);
  ring.Record(TraceEvent::kSeal, "threshold");
  EXPECT_EQ(ring.TotalRecorded(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(TraceRingTest, EventNamesAreStable) {
  EXPECT_STREQ(TraceEventName(TraceEvent::kSeal), "seal");
  EXPECT_STREQ(TraceEventName(TraceEvent::kBaseMerge), "base_merge");
  EXPECT_STREQ(TraceEventName(TraceEvent::kBudgetTrigger), "budget_trigger");
  EXPECT_STREQ(TraceEventName(TraceEvent::kWalRotate), "wal_rotate");
}

// Concurrent writers + a racing reader: every snapshot the reader takes
// must contain only internally consistent events (matching
// event/reason/value triples), never a torn slot. The TSan job runs
// this same shape heavier in epoch_stress_test.
TEST(TraceRingTest, ConcurrentWritersProduceConsistentSnapshots) {
  MetricsToggle toggle(true);
  TraceRing ring(64);
  static constexpr int kWriters = 4;
  static constexpr std::uint64_t kPerWriter = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      const TraceEvent event =
          w % 2 == 0 ? TraceEvent::kSeal : TraceEvent::kFold;
      const char* reason = w % 2 == 0 ? "threshold" : "sync";
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        ring.Record(event, reason, /*duration_ns=*/w, /*value=*/i);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&ring, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const TraceRecord& rec : ring.Snapshot()) {
        // A consistent slot pairs the event with its writer's reason.
        if (rec.event == TraceEvent::kSeal) {
          ASSERT_STREQ(rec.reason, "threshold");
        } else {
          ASSERT_EQ(rec.event, TraceEvent::kFold);
          ASSERT_STREQ(rec.reason, "sync");
        }
        ASSERT_LT(rec.value, kPerWriter);
      }
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(ring.TotalRecorded(), kWriters * kPerWriter);
  const std::vector<TraceRecord> final_events = ring.Snapshot();
  EXPECT_EQ(final_events.size(), ring.capacity());
}

}  // namespace
}  // namespace obs
}  // namespace hexastore

// Cross-store equivalence tests for the five LUBM benchmark queries.
#include <gtest/gtest.h>

#include "baseline/triple_table.h"
#include "baseline/vertical_store.h"
#include "core/hexastore.h"
#include "data/lubm_generator.h"
#include "workload/lubm_queries.h"

namespace hexastore::workload {
namespace {

class LubmQueriesTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    auto triples = data::LubmGenerator().Generate(GetParam());
    IdTripleVec encoded;
    encoded.reserve(triples.size());
    for (const auto& t : triples) {
      encoded.push_back(dict_.Encode(t));
    }
    hexa_.BulkLoad(encoded);
    covp1_.BulkLoad(encoded);
    covp2_.BulkLoad(encoded);
    table_.BulkLoad(encoded);
    ids_ = LubmIds::Resolve(dict_);
  }

  Dictionary dict_;
  Hexastore hexa_;
  VerticalStore covp1_{false};
  VerticalStore covp2_{true};
  TripleTableStore table_;
  LubmIds ids_;
};

TEST_P(LubmQueriesTest, Q1AllStoresAgree) {
  SubjectPredRows expect = LubmRelatedToOracle(table_, ids_.course10);
  EXPECT_EQ(LubmRelatedToHexa(hexa_, ids_.course10), expect);
  EXPECT_EQ(LubmRelatedToCovp(covp1_, ids_.course10), expect);
  EXPECT_EQ(LubmRelatedToCovp(covp2_, ids_.course10), expect);
}

TEST_P(LubmQueriesTest, Q2AllStoresAgree) {
  SubjectPredRows expect = LubmRelatedToOracle(table_, ids_.university0);
  EXPECT_FALSE(expect.empty());
  EXPECT_EQ(LubmRelatedToHexa(hexa_, ids_.university0), expect);
  EXPECT_EQ(LubmRelatedToCovp(covp1_, ids_.university0), expect);
  EXPECT_EQ(LubmRelatedToCovp(covp2_, ids_.university0), expect);
}

TEST_P(LubmQueriesTest, Q3AllStoresAgree) {
  IdTripleVec expect = LubmQ3Oracle(table_, ids_.assoc_prof10);
  EXPECT_EQ(LubmQ3Hexa(hexa_, ids_.assoc_prof10), expect);
  EXPECT_EQ(LubmQ3Covp(covp1_, ids_.assoc_prof10), expect);
  EXPECT_EQ(LubmQ3Covp(covp2_, ids_.assoc_prof10), expect);
}

TEST_P(LubmQueriesTest, Q4AllStoresAgree) {
  GroupedRows expect = LubmQ4Oracle(table_, ids_);
  EXPECT_EQ(LubmQ4Hexa(hexa_, ids_), expect);
  EXPECT_EQ(LubmQ4Covp(covp1_, ids_), expect);
  EXPECT_EQ(LubmQ4Covp(covp2_, ids_), expect);
}

TEST_P(LubmQueriesTest, Q5AllStoresAgree) {
  DegreeGroups expect = LubmQ5Oracle(table_, ids_);
  EXPECT_EQ(LubmQ5Hexa(hexa_, ids_), expect);
  EXPECT_EQ(LubmQ5Covp(covp1_, ids_), expect);
  EXPECT_EQ(LubmQ5Covp(covp2_, ids_), expect);
}

TEST_P(LubmQueriesTest, Q3IncludesBothDirections) {
  IdTripleVec rows = LubmQ3Hexa(hexa_, ids_.assoc_prof10);
  if (ids_.assoc_prof10 == kInvalidId) {
    GTEST_SKIP() << "AP10 not present at this prefix size";
  }
  bool as_subject = false;
  bool as_object = false;
  for (const auto& t : rows) {
    as_subject |= (t.s == ids_.assoc_prof10);
    as_object |= (t.o == ids_.assoc_prof10);
  }
  EXPECT_TRUE(as_subject);
  // As-object requires an advisee or publication; present at larger sizes.
  if (GetParam() >= 30000) {
    EXPECT_TRUE(as_object);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LubmQueriesTest,
                         ::testing::Values(1000, 10000, 60000));

TEST(LubmQueriesEdgeTest, EmptyStore) {
  Dictionary dict;
  Hexastore hexa;
  VerticalStore covp1(false);
  TripleTableStore table;
  LubmIds ids = LubmIds::Resolve(dict);
  EXPECT_TRUE(LubmRelatedToHexa(hexa, ids.course10).empty());
  EXPECT_TRUE(LubmRelatedToCovp(covp1, ids.university0).empty());
  EXPECT_TRUE(LubmQ3Hexa(hexa, ids.assoc_prof10).empty());
  EXPECT_TRUE(LubmQ4Covp(covp1, ids).empty());
  EXPECT_TRUE(LubmQ5Oracle(table, ids).empty());
}

}  // namespace
}  // namespace hexastore::workload

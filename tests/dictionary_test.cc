// Unit tests for dictionary encoding.
#include <gtest/gtest.h>

#include "dict/dictionary.h"

namespace hexastore {
namespace {

TEST(DictionaryTest, InternAssignsDenseIdsFromOne) {
  Dictionary d;
  EXPECT_EQ(d.Intern(Term::Iri("a")), 1u);
  EXPECT_EQ(d.Intern(Term::Iri("b")), 2u);
  EXPECT_EQ(d.Intern(Term::Literal("c")), 3u);
  EXPECT_EQ(d.size(), 3u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  Id first = d.Intern(Term::Iri("a"));
  Id second = d.Intern(Term::Iri("a"));
  EXPECT_EQ(first, second);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, IriAndLiteralWithSameSpellingDiffer) {
  Dictionary d;
  Id iri = d.Intern(Term::Iri("a"));
  Id lit = d.Intern(Term::Literal("a"));
  Id blank = d.Intern(Term::Blank("a"));
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, blank);
}

TEST(DictionaryTest, LangAndTypedLiteralsDiffer) {
  Dictionary d;
  Id plain = d.Intern(Term::Literal("x"));
  Id lang = d.Intern(Term::LangLiteral("x", "en"));
  Id typed = d.Intern(Term::TypedLiteral("x", "t"));
  EXPECT_NE(plain, lang);
  EXPECT_NE(plain, typed);
  EXPECT_NE(lang, typed);
  EXPECT_EQ(d.size(), 3u);
}

TEST(DictionaryTest, LookupWithoutInsert) {
  Dictionary d;
  EXPECT_EQ(d.Lookup(Term::Iri("missing")), kInvalidId);
  d.Intern(Term::Iri("present"));
  EXPECT_NE(d.Lookup(Term::Iri("present")), kInvalidId);
  EXPECT_EQ(d.size(), 1u);  // Lookup must not insert
  EXPECT_EQ(d.Lookup(Term::Iri("missing")), kInvalidId);
}

TEST(DictionaryTest, TermRoundTrip) {
  Dictionary d;
  Term original = Term::LangLiteral("hello", "en");
  Id id = d.Intern(original);
  EXPECT_EQ(d.term(id), original);
  auto opt = d.TryTerm(id);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(*opt, original);
}

TEST(DictionaryTest, TryTermOutOfRange) {
  Dictionary d;
  EXPECT_FALSE(d.TryTerm(kInvalidId).has_value());
  EXPECT_FALSE(d.TryTerm(1).has_value());
  d.Intern(Term::Iri("a"));
  EXPECT_TRUE(d.TryTerm(1).has_value());
  EXPECT_FALSE(d.TryTerm(2).has_value());
}

TEST(DictionaryTest, EncodeDecodeRoundTrip) {
  Dictionary d;
  Triple t{Term::Iri("s"), Term::Iri("p"), Term::Literal("o")};
  IdTriple encoded = d.Encode(t);
  EXPECT_NE(encoded.s, kInvalidId);
  EXPECT_NE(encoded.p, kInvalidId);
  EXPECT_NE(encoded.o, kInvalidId);
  EXPECT_EQ(d.Decode(encoded), t);
}

TEST(DictionaryTest, TryEncodeDoesNotIntern) {
  Dictionary d;
  Triple t{Term::Iri("s"), Term::Iri("p"), Term::Literal("o")};
  EXPECT_FALSE(d.TryEncode(t).has_value());
  EXPECT_EQ(d.size(), 0u);
  d.Encode(t);
  auto encoded = d.TryEncode(t);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(d.Decode(*encoded), t);
}

TEST(DictionaryTest, TryEncodePartiallyKnown) {
  Dictionary d;
  d.Intern(Term::Iri("s"));
  d.Intern(Term::Iri("p"));
  Triple t{Term::Iri("s"), Term::Iri("p"), Term::Literal("new")};
  EXPECT_FALSE(d.TryEncode(t).has_value());
}

TEST(DictionaryTest, MemoryGrowsWithContent) {
  Dictionary d;
  std::size_t empty = d.MemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    d.Intern(Term::Iri("http://example.org/resource/number/" +
                       std::to_string(i)));
  }
  EXPECT_GT(d.MemoryBytes(), empty + 1000 * 8);
}

TEST(DictionaryTest, ManyTermsKeepStableIds) {
  Dictionary d;
  std::vector<Id> ids;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(d.Intern(Term::Iri("t" + std::to_string(i))));
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(d.Lookup(Term::Iri("t" + std::to_string(i))), ids[i]);
    EXPECT_EQ(d.term(ids[i]).value(), "t" + std::to_string(i));
  }
}

}  // namespace
}  // namespace hexastore

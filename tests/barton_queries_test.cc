// Cross-store equivalence tests for the seven Barton benchmark queries:
// for several dataset sizes, Hexastore / COVP1 / COVP2 / oracle must all
// produce identical canonical answers, with and without the 28-property
// restriction.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/triple_table.h"
#include "baseline/vertical_store.h"
#include "core/hexastore.h"
#include "data/barton_generator.h"
#include "workload/barton_queries.h"

namespace hexastore::workload {
namespace {

class BartonQueriesTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    auto triples = data::BartonGenerator().Generate(GetParam());
    IdTripleVec encoded;
    encoded.reserve(triples.size());
    for (const auto& t : triples) {
      encoded.push_back(dict_.Encode(t));
    }
    hexa_.BulkLoad(encoded);
    covp1_.BulkLoad(encoded);
    covp2_.BulkLoad(encoded);
    table_.BulkLoad(encoded);
    ids_ = BartonIds::Resolve(dict_);
  }

  Dictionary dict_;
  Hexastore hexa_;
  VerticalStore covp1_{false};
  VerticalStore covp2_{true};
  TripleTableStore table_;
  BartonIds ids_;
};

TEST_P(BartonQueriesTest, Q1AllStoresAgree) {
  CountRows expect = BartonQ1Oracle(table_, ids_);
  EXPECT_FALSE(expect.empty());
  EXPECT_EQ(BartonQ1Hexa(hexa_, ids_), expect);
  EXPECT_EQ(BartonQ1Covp(covp1_, ids_), expect);
  EXPECT_EQ(BartonQ1Covp(covp2_, ids_), expect);
}

TEST_P(BartonQueriesTest, Q2AllStoresAgree) {
  const IdVec* subsets[] = {nullptr, &ids_.preselected};
  for (const IdVec* subset : subsets) {
    CountRows expect = BartonQ2Oracle(table_, ids_, subset);
    EXPECT_EQ(BartonQ2Hexa(hexa_, ids_, subset), expect);
    EXPECT_EQ(BartonQ2Covp(covp1_, ids_, subset), expect);
    EXPECT_EQ(BartonQ2Covp(covp2_, ids_, subset), expect);
    if (subset == nullptr) {
      EXPECT_FALSE(expect.empty());
    }
  }
}

TEST_P(BartonQueriesTest, Q3AllStoresAgree) {
  const IdVec* subsets[] = {nullptr, &ids_.preselected};
  for (const IdVec* subset : subsets) {
    PairCountRows expect = BartonQ3Oracle(table_, ids_, subset);
    EXPECT_EQ(BartonQ3Hexa(hexa_, ids_, subset), expect);
    EXPECT_EQ(BartonQ3Covp(covp1_, ids_, subset), expect);
    EXPECT_EQ(BartonQ3Covp(covp2_, ids_, subset), expect);
  }
}

TEST_P(BartonQueriesTest, Q4AllStoresAgree) {
  const IdVec* subsets[] = {nullptr, &ids_.preselected};
  for (const IdVec* subset : subsets) {
    PairCountRows expect = BartonQ4Oracle(table_, ids_, subset);
    EXPECT_EQ(BartonQ4Hexa(hexa_, ids_, subset), expect);
    EXPECT_EQ(BartonQ4Covp(covp1_, ids_, subset), expect);
    EXPECT_EQ(BartonQ4Covp(covp2_, ids_, subset), expect);
  }
}

TEST_P(BartonQueriesTest, Q5AllStoresAgree) {
  IdPairRows expect = BartonQ5Oracle(table_, ids_);
  EXPECT_EQ(BartonQ5Hexa(hexa_, ids_), expect);
  EXPECT_EQ(BartonQ5Covp(covp1_, ids_), expect);
  EXPECT_EQ(BartonQ5Covp(covp2_, ids_), expect);
}

TEST_P(BartonQueriesTest, Q6AllStoresAgree) {
  const IdVec* subsets[] = {nullptr, &ids_.preselected};
  for (const IdVec* subset : subsets) {
    CountRows expect = BartonQ6Oracle(table_, ids_, subset);
    EXPECT_EQ(BartonQ6Hexa(hexa_, ids_, subset), expect);
    EXPECT_EQ(BartonQ6Covp(covp1_, ids_, subset), expect);
    EXPECT_EQ(BartonQ6Covp(covp2_, ids_, subset), expect);
  }
}

TEST_P(BartonQueriesTest, Q7AllStoresAgree) {
  IdTripleVec expect = BartonQ7Oracle(table_, ids_);
  EXPECT_EQ(BartonQ7Hexa(hexa_, ids_), expect);
  EXPECT_EQ(BartonQ7Covp(covp1_, ids_), expect);
  EXPECT_EQ(BartonQ7Covp(covp2_, ids_), expect);
}

TEST_P(BartonQueriesTest, Q2SubsetIsRestrictionOfFull) {
  CountRows full = BartonQ2Hexa(hexa_, ids_, nullptr);
  CountRows sub = BartonQ2Hexa(hexa_, ids_, &ids_.preselected);
  // Every subset row appears identically in the full result.
  for (const auto& row : sub) {
    EXPECT_NE(std::find(full.begin(), full.end(), row), full.end());
  }
  EXPECT_LE(sub.size(), full.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BartonQueriesTest,
                         ::testing::Values(500, 5000, 30000));

// Tiny-store edge cases: queries over data that lacks the vocabulary must
// return empty without crashing.
TEST(BartonQueriesEdgeTest, EmptyStore) {
  Dictionary dict;
  Hexastore hexa;
  VerticalStore covp1(false);
  VerticalStore covp2(true);
  TripleTableStore table;
  BartonIds ids = BartonIds::Resolve(dict);
  EXPECT_TRUE(BartonQ1Hexa(hexa, ids).empty());
  EXPECT_TRUE(BartonQ1Covp(covp1, ids).empty());
  EXPECT_TRUE(BartonQ2Hexa(hexa, ids, nullptr).empty());
  EXPECT_TRUE(BartonQ3Covp(covp2, ids, nullptr).empty());
  EXPECT_TRUE(BartonQ5Hexa(hexa, ids).empty());
  EXPECT_TRUE(BartonQ6Covp(covp1, ids, nullptr).empty());
  EXPECT_TRUE(BartonQ7Oracle(table, ids).empty());
}

}  // namespace
}  // namespace hexastore::workload

// Tests for delta/varint-compressed sorted id vectors.
#include <gtest/gtest.h>

#include "index/compressed_vec.h"
#include "util/rng.h"

namespace hexastore {
namespace {

TEST(CompressedVecTest, EmptyVector) {
  CompressedIdVec c(IdVec{});
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_TRUE(c.Decode().empty());
  EXPECT_FALSE(c.Contains(1));
}

TEST(CompressedVecTest, SingleElement) {
  CompressedIdVec c(IdVec{42});
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.Decode(), (IdVec{42}));
  EXPECT_TRUE(c.Contains(42));
  EXPECT_FALSE(c.Contains(41));
  EXPECT_FALSE(c.Contains(43));
}

TEST(CompressedVecTest, DecodeRoundTrip) {
  IdVec v{1, 2, 10, 100, 1000, 10000, 1000000, 1000001};
  CompressedIdVec c(v);
  EXPECT_EQ(c.Decode(), v);
}

TEST(CompressedVecTest, ForEachVisitsAllAscending) {
  IdVec v;
  for (Id i = 1; i <= 200; ++i) {
    v.push_back(i * 7);
  }
  CompressedIdVec c(v, /*skip_interval=*/16);
  IdVec seen;
  c.ForEach([&seen](Id id) { seen.push_back(id); });
  EXPECT_EQ(seen, v);
}

TEST(CompressedVecTest, ContainsAcrossBlockBoundaries) {
  IdVec v;
  for (Id i = 0; i < 100; ++i) {
    v.push_back(3 + i * 5);
  }
  CompressedIdVec c(v, /*skip_interval=*/8);
  for (Id i = 0; i < 100; ++i) {
    EXPECT_TRUE(c.Contains(3 + i * 5)) << i;
    EXPECT_FALSE(c.Contains(4 + i * 5)) << i;
  }
  EXPECT_FALSE(c.Contains(0));
  EXPECT_FALSE(c.Contains(2));
  EXPECT_FALSE(c.Contains(10000));
}

TEST(CompressedVecTest, DenseSequenceCompressesWell) {
  IdVec v;
  for (Id i = 1000000; i < 1010000; ++i) {
    v.push_back(i);  // deltas of 1 -> ~1 byte each
  }
  CompressedIdVec c(v);
  EXPECT_LT(c.PayloadBytes(), v.size() * 2);
  EXPECT_LT(c.MemoryBytes(), v.size() * sizeof(Id) / 3);
}

TEST(CompressedVecTest, SkipIntervalOneAndHuge) {
  IdVec v{5, 9, 12, 80, 81};
  for (std::size_t interval : {std::size_t{1}, std::size_t{1000}}) {
    CompressedIdVec c(v, interval);
    EXPECT_EQ(c.Decode(), v);
    for (Id id : v) {
      EXPECT_TRUE(c.Contains(id));
    }
    EXPECT_FALSE(c.Contains(6));
  }
}

class CompressedVecPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressedVecPropertyTest, RandomRoundTripsAndMembership) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    IdVec v;
    const std::uint64_t n = rng.Uniform(500);
    for (std::uint64_t i = 0; i < n; ++i) {
      v.push_back(1 + rng.Uniform(1u << 20));
    }
    SortUnique(&v);
    const std::size_t interval = 1 + rng.Uniform(64);
    CompressedIdVec c(v, interval);
    ASSERT_EQ(c.Decode(), v);
    ASSERT_EQ(c.size(), v.size());
    for (int probe = 0; probe < 100; ++probe) {
      Id id = 1 + rng.Uniform(1u << 20);
      EXPECT_EQ(c.Contains(id), SortedContains(v, id));
    }
    for (Id id : v) {
      EXPECT_TRUE(c.Contains(id));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressedVecPropertyTest,
                         ::testing::Values(9, 99, 999));

}  // namespace
}  // namespace hexastore

// Cross-checks SPARQL formulations of the paper's benchmark queries
// against the hand-planned workload implementations: the declarative and
// the physical plans must agree.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/graph.h"
#include "data/lubm_generator.h"
#include "query/sparql_engine.h"
#include "workload/lubm_queries.h"

namespace hexastore {
namespace {

class SparqlWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_.BulkLoad(data::LubmGenerator().Generate(30000));
    ids_ = workload::LubmIds::Resolve(graph_.dict());
  }

  ResultSet Run(const std::string& query) {
    auto r = RunSparql(graph_.store(), graph_.dict(), query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  Graph graph_;
  workload::LubmIds ids_;
};

TEST_F(SparqlWorkloadTest, Lq1AsSparql) {
  // LQ1: everyone related to Course10 (non-property-bound).
  ASSERT_NE(ids_.course10, kInvalidId);
  const std::string course_uri =
      graph_.dict().term(ids_.course10).value();
  ResultSet r = Run("SELECT ?s ?p WHERE { ?s ?p <" + course_uri + "> }");
  workload::SubjectPredRows got;
  VarId s = r.Column("s");
  VarId p = r.Column("p");
  for (const Row& row : r.rows) {
    got.emplace_back(row[static_cast<std::size_t>(s)],
                     row[static_cast<std::size_t>(p)]);
  }
  std::sort(got.begin(), got.end());
  got.erase(std::unique(got.begin(), got.end()), got.end());
  EXPECT_EQ(got, workload::LubmRelatedToHexa(graph_.store(),
                                             ids_.course10));
}

TEST_F(SparqlWorkloadTest, Lq3SubjectSideAsSparql) {
  // The subject half of LQ3: all statements about AP10 as subject.
  ASSERT_NE(ids_.assoc_prof10, kInvalidId);
  const std::string prof_uri =
      graph_.dict().term(ids_.assoc_prof10).value();
  ResultSet r = Run("SELECT ?p ?o WHERE { <" + prof_uri + "> ?p ?o }");
  IdTripleVec got;
  VarId p = r.Column("p");
  VarId o = r.Column("o");
  for (const Row& row : r.rows) {
    got.push_back(IdTriple{ids_.assoc_prof10,
                           row[static_cast<std::size_t>(p)],
                           row[static_cast<std::size_t>(o)]});
  }
  std::sort(got.begin(), got.end());

  IdTripleVec expect;
  for (const IdTriple& t :
       workload::LubmQ3Hexa(graph_.store(), ids_.assoc_prof10)) {
    if (t.s == ids_.assoc_prof10) {
      expect.push_back(t);
    }
  }
  // LQ3 also returns object-side rows; keep only the subject side and
  // dedupe (a reflexive triple would appear once in each).
  std::sort(expect.begin(), expect.end());
  expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
  EXPECT_EQ(got, expect);
}

TEST_F(SparqlWorkloadTest, Lq4GroupCountsAsSparql) {
  // LQ4's aggregate shape: per-course count of related people for the
  // courses AP10 teaches.
  ASSERT_NE(ids_.assoc_prof10, kInvalidId);
  const std::string prof_uri =
      graph_.dict().term(ids_.assoc_prof10).value();
  ResultSet r = Run(
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT ?course (COUNT(*) AS ?n) WHERE { <" +
      prof_uri +
      "> ub:teacherOf ?course . ?x ?rel ?course } GROUP BY ?course "
      "ORDER BY ?course");
  workload::GroupedRows groups =
      workload::LubmQ4Hexa(graph_.store(), ids_);
  ASSERT_EQ(r.rows.size(), groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    EXPECT_EQ(r.rows[i][0], groups[i].first);
    EXPECT_EQ(r.rows[i][1], groups[i].second.size());
  }
}

TEST_F(SparqlWorkloadTest, FigureOneSecondQueryAsSparql) {
  // The paper's Figure 1(b) second query shape over LUBM data: who has
  // the same relationship to some university as AP10 has to another.
  ASSERT_NE(ids_.assoc_prof10, kInvalidId);
  const std::string prof_uri =
      graph_.dict().term(ids_.assoc_prof10).value();
  ResultSet r = Run(
      "SELECT DISTINCT ?who ?rel WHERE { <" + prof_uri +
      "> ?rel ?u1 . ?who ?rel ?u2 . FILTER(?who != <" + prof_uri +
      ">) }");
  // Sanity: results exist and every binding really shares the relation.
  for (const Row& row : r.rows) {
    EXPECT_NE(row[0], ids_.assoc_prof10);
  }
  EXPECT_FALSE(r.rows.empty());
}

}  // namespace
}  // namespace hexastore

// Unit tests for result-set operators.
#include <gtest/gtest.h>

#include "query/operators.h"

namespace hexastore {
namespace {

ResultSet MakeResult(std::vector<std::string> vars,
                     std::vector<Row> rows) {
  ResultSet r;
  for (const auto& v : vars) {
    r.vars.Intern(v);
  }
  r.rows = std::move(rows);
  return r;
}

TEST(OperatorsTest, ProjectReordersColumns) {
  ResultSet in = MakeResult({"a", "b", "c"}, {{1, 2, 3}, {4, 5, 6}});
  ResultSet out = Project(in, {2, 0});
  EXPECT_EQ(out.vars.size(), 2u);
  EXPECT_EQ(out.vars.name(0), "c");
  EXPECT_EQ(out.vars.name(1), "a");
  EXPECT_EQ(out.rows, (std::vector<Row>{{3, 1}, {6, 4}}));
}

TEST(OperatorsTest, DistinctRemovesDuplicates) {
  ResultSet in = MakeResult({"a"}, {{2}, {1}, {2}, {1}, {3}});
  ResultSet out = Distinct(std::move(in));
  EXPECT_EQ(out.rows, (std::vector<Row>{{1}, {2}, {3}}));
}

TEST(OperatorsTest, OrderBySortsLexicographically) {
  ResultSet in = MakeResult({"a", "b"}, {{2, 1}, {1, 9}, {2, 0}, {1, 3}});
  ResultSet out = OrderBy(std::move(in), {0, 1});
  EXPECT_EQ(out.rows,
            (std::vector<Row>{{1, 3}, {1, 9}, {2, 0}, {2, 1}}));
}

TEST(OperatorsTest, OrderByIsStableOnTies) {
  ResultSet in = MakeResult({"a", "b"}, {{1, 9}, {1, 3}, {1, 7}});
  ResultSet out = OrderBy(std::move(in), {0});
  EXPECT_EQ(out.rows, (std::vector<Row>{{1, 9}, {1, 3}, {1, 7}}));
}

TEST(OperatorsTest, LimitTruncates) {
  ResultSet in = MakeResult({"a"}, {{1}, {2}, {3}});
  EXPECT_EQ(Limit(std::move(in), 2).rows.size(), 2u);
  ResultSet in2 = MakeResult({"a"}, {{1}});
  EXPECT_EQ(Limit(std::move(in2), 5).rows.size(), 1u);
}

TEST(OperatorsTest, GroupCount) {
  ResultSet in = MakeResult({"a"}, {{7}, {7}, {9}, {7}, {8}});
  GroupCounts counts = GroupCount(in, 0);
  EXPECT_EQ(counts, (GroupCounts{{7, 3}, {8, 1}, {9, 1}}));
}

TEST(OperatorsTest, GroupCountPairs) {
  ResultSet in =
      MakeResult({"a", "b"}, {{1, 2}, {1, 2}, {1, 3}, {2, 2}});
  PairCounts counts = GroupCountPairs(in, 0, 1);
  EXPECT_EQ(counts, (PairCounts{{{1, 2}, 2}, {{1, 3}, 1}, {{2, 2}, 1}}));
}

TEST(OperatorsTest, FormatResultSetShowsTerms) {
  Dictionary dict;
  Id a = dict.Intern(Term::Iri("http://x/a"));
  Id b = dict.Intern(Term::Literal("hello"));
  ResultSet in = MakeResult({"s", "o"}, {{a, b}});
  std::string out = FormatResultSet(in, dict);
  EXPECT_NE(out.find("?s"), std::string::npos);
  EXPECT_NE(out.find("<http://x/a>"), std::string::npos);
  EXPECT_NE(out.find("\"hello\""), std::string::npos);
  EXPECT_NE(out.find("(1 rows)"), std::string::npos);
}

TEST(OperatorsTest, FormatResultSetTruncates) {
  Dictionary dict;
  Id a = dict.Intern(Term::Iri("a"));
  std::vector<Row> rows(50, Row{a});
  ResultSet in = MakeResult({"s"}, std::move(rows));
  std::string out = FormatResultSet(in, dict, 10);
  EXPECT_NE(out.find("40 more rows"), std::string::npos);
}

}  // namespace
}  // namespace hexastore

// Tests for the dedicated merge-join operators (§4.2's "all first-step
// pairwise joins are fast merge-joins"), cross-checked against the
// generic BGP evaluator.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/hexastore.h"
#include "query/bgp.h"
#include "query/merge_join.h"
#include "util/rng.h"

namespace hexastore {
namespace {

class MergeJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small academic graph: people related to courses/universities.
    // p=1 takesCourse, p=2 teacherOf, p=3 degreeFrom.
    store_.Insert({10, 1, 100});
    store_.Insert({11, 1, 100});
    store_.Insert({11, 1, 101});
    store_.Insert({12, 1, 101});
    store_.Insert({20, 2, 100});
    store_.Insert({20, 2, 101});
    store_.Insert({10, 3, 200});
    store_.Insert({11, 3, 200});
    store_.Insert({12, 3, 201});
  }
  Hexastore store_;
};

TEST_F(MergeJoinTest, SubjectsByObjects) {
  // People involved in both course 100 and 101 via takesCourse.
  EXPECT_EQ(JoinSubjectsByObjects(store_, 1, 100, 1, 101), (IdVec{11}));
  // Empty when one side has no matches.
  EXPECT_TRUE(JoinSubjectsByObjects(store_, 1, 100, 1, 999).empty());
}

TEST_F(MergeJoinTest, SubjectsOfObjects) {
  // Anyone related to both 100 and 101 by any property: 11 (takesCourse
  // both) and 20 (teacherOf both).
  EXPECT_EQ(JoinSubjectsOfObjects(store_, 100, 101), (IdVec{11, 20}));
}

TEST_F(MergeJoinTest, ObjectsBySubjects) {
  // Courses shared between students 10 and 11 under takesCourse.
  EXPECT_EQ(JoinObjectsBySubjects(store_, 10, 1, 11, 1), (IdVec{100}));
}

TEST_F(MergeJoinTest, PredicatesByPairs) {
  // Figure 1b: the property relating 10 to 200 that also relates 11 to
  // 200 (degreeFrom).
  EXPECT_EQ(JoinPredicatesByPairs(store_, 10, 200, 11, 200), (IdVec{3}));
  EXPECT_TRUE(JoinPredicatesByPairs(store_, 10, 200, 12, 200).empty());
}

TEST_F(MergeJoinTest, JoinChain) {
  // ?x takesCourse ?m . ?m ... no chain here; build one: course 100
  // relates to nothing as subject. Add edges: 100 -4-> 300.
  store_.Insert({100, 4, 300});
  store_.Insert({101, 4, 301});
  auto pairs = JoinChain(store_, 1, 4);
  // takesCourse then p4: (10,300),(11,300),(11,301),(12,301).
  std::vector<std::pair<Id, Id>> expect = {
      {10, 300}, {11, 300}, {11, 301}, {12, 301}};
  EXPECT_EQ(pairs, expect);
}

TEST(MergeJoinPropertyTest, AgreesWithGenericEvaluator) {
  Rng rng(4242);
  Hexastore store;
  Dictionary dict;
  // Random graph over interned terms so EvalBgp can be used.
  std::vector<Id> nodes;
  std::vector<Id> preds;
  for (int i = 0; i < 25; ++i) {
    nodes.push_back(dict.Intern(Term::Iri("n" + std::to_string(i))));
  }
  for (int i = 0; i < 4; ++i) {
    preds.push_back(dict.Intern(Term::Iri("p" + std::to_string(i))));
  }
  for (int i = 0; i < 400; ++i) {
    store.Insert({nodes[rng.Uniform(nodes.size())],
                  preds[rng.Uniform(preds.size())],
                  nodes[rng.Uniform(nodes.size())]});
  }
  auto var = [](const std::string& n) { return PatternTerm::Variable(n); };
  auto bound = [&dict](Id id) {
    return PatternTerm::Bound(dict.term(id));
  };

  for (int round = 0; round < 30; ++round) {
    Id p1 = preds[rng.Uniform(preds.size())];
    Id p2 = preds[rng.Uniform(preds.size())];
    Id o1 = nodes[rng.Uniform(nodes.size())];
    Id o2 = nodes[rng.Uniform(nodes.size())];

    // JoinSubjectsByObjects vs BGP { ?x p1 o1 . ?x p2 o2 }.
    IdVec direct = JoinSubjectsByObjects(store, p1, o1, p2, o2);
    ResultSet rs = EvalBgp(store, dict,
                           {{var("x"), bound(p1), bound(o1)},
                            {var("x"), bound(p2), bound(o2)}});
    IdVec via_bgp;
    VarId x = rs.Column("x");
    for (const Row& row : rs.rows) {
      via_bgp.push_back(row[static_cast<std::size_t>(x)]);
    }
    SortUnique(&via_bgp);
    EXPECT_EQ(direct, via_bgp);

    // JoinChain vs BGP { ?a p1 ?m . ?m p2 ?b }.
    auto chain = JoinChain(store, p1, p2);
    ResultSet rs2 = EvalBgp(store, dict,
                            {{var("a"), bound(p1), var("m")},
                             {var("m"), bound(p2), var("b")}});
    std::vector<std::pair<Id, Id>> via_bgp2;
    VarId a = rs2.Column("a");
    VarId b = rs2.Column("b");
    for (const Row& row : rs2.rows) {
      via_bgp2.emplace_back(row[static_cast<std::size_t>(a)],
                            row[static_cast<std::size_t>(b)]);
    }
    std::sort(via_bgp2.begin(), via_bgp2.end());
    via_bgp2.erase(std::unique(via_bgp2.begin(), via_bgp2.end()),
                   via_bgp2.end());
    EXPECT_EQ(chain, via_bgp2);
  }
}

}  // namespace
}  // namespace hexastore

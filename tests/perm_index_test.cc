// Unit tests for one permutation index (header map + sorted vectors).
#include <gtest/gtest.h>

#include "index/perm_index.h"

namespace hexastore {
namespace {

TEST(PermutationTest, NamesAndRoles) {
  EXPECT_STREQ(PermutationName(Permutation::kSpo), "spo");
  EXPECT_STREQ(PermutationName(Permutation::kOps), "ops");

  PermutationRoles roles = RolesOf(Permutation::kPos);
  EXPECT_EQ(roles.first, Role::kPredicate);
  EXPECT_EQ(roles.second, Role::kObject);
  EXPECT_EQ(roles.third, Role::kSubject);

  // All six permutations are distinct role triples.
  for (Permutation a : kAllPermutations) {
    for (Permutation b : kAllPermutations) {
      if (a == b) {
        continue;
      }
      PermutationRoles ra = RolesOf(a);
      PermutationRoles rb = RolesOf(b);
      EXPECT_FALSE(ra.first == rb.first && ra.second == rb.second)
          << PermutationName(a) << " vs " << PermutationName(b);
    }
  }
}

TEST(PermIndexTest, InsertAndFind) {
  PermIndex idx;
  EXPECT_TRUE(idx.Insert(1, 10));
  EXPECT_TRUE(idx.Insert(1, 5));
  EXPECT_FALSE(idx.Insert(1, 10));
  const IdVec* vec = idx.Find(1);
  ASSERT_NE(vec, nullptr);
  EXPECT_EQ(*vec, (IdVec{5, 10}));
  EXPECT_EQ(idx.Find(2), nullptr);
}

TEST(PermIndexTest, Contains) {
  PermIndex idx;
  idx.Insert(1, 10);
  EXPECT_TRUE(idx.Contains(1, 10));
  EXPECT_FALSE(idx.Contains(1, 11));
  EXPECT_FALSE(idx.Contains(2, 10));
}

TEST(PermIndexTest, EraseDropsEmptyHeader) {
  PermIndex idx;
  idx.Insert(1, 10);
  idx.Insert(1, 20);
  EXPECT_TRUE(idx.Erase(1, 10));
  EXPECT_EQ(idx.HeaderCount(), 1u);
  EXPECT_TRUE(idx.Erase(1, 20));
  EXPECT_EQ(idx.HeaderCount(), 0u);
  EXPECT_EQ(idx.Find(1), nullptr);
  EXPECT_FALSE(idx.Erase(1, 20));
}

TEST(PermIndexTest, Counts) {
  PermIndex idx;
  idx.Insert(1, 10);
  idx.Insert(1, 20);
  idx.Insert(2, 10);
  EXPECT_EQ(idx.HeaderCount(), 2u);
  EXPECT_EQ(idx.EntryCount(), 3u);
}

TEST(PermIndexTest, SortedHeaders) {
  PermIndex idx;
  idx.Insert(30, 1);
  idx.Insert(10, 1);
  idx.Insert(20, 1);
  EXPECT_EQ(idx.SortedHeaders(), (std::vector<Id>{10, 20, 30}));
}

TEST(PermIndexTest, ForEachHeaderVisitsAll) {
  PermIndex idx;
  idx.Insert(1, 2);
  idx.Insert(3, 4);
  std::size_t visited = 0;
  std::size_t entries = 0;
  idx.ForEachHeader([&](Id first, const IdVec& vec) {
    (void)first;
    ++visited;
    entries += vec.size();
  });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(entries, 2u);
}

TEST(PermIndexTest, ClearAndReserve) {
  PermIndex idx;
  idx.Reserve(100);
  idx.Insert(1, 2);
  idx.Clear();
  EXPECT_EQ(idx.HeaderCount(), 0u);
}

TEST(PermIndexTest, BulkPathSortUniqueAll) {
  PermIndex idx;
  IdVec* vec = idx.GetOrCreate(7);
  vec->push_back(9);
  vec->push_back(2);
  vec->push_back(9);
  idx.SortUniqueAll();
  EXPECT_EQ(*idx.Find(7), (IdVec{2, 9}));
}

TEST(PermIndexTest, MemoryBytesGrow) {
  PermIndex idx;
  std::size_t before = idx.MemoryBytes();
  for (Id i = 1; i <= 200; ++i) {
    idx.Insert(i % 10, i);
  }
  EXPECT_GT(idx.MemoryBytes(), before);
}

}  // namespace
}  // namespace hexastore

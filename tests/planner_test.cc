// Unit tests for the greedy BGP planner.
#include <gtest/gtest.h>

#include "core/hexastore.h"
#include "query/planner.h"

namespace hexastore {
namespace {

TriplePattern TP(PatternTerm s, PatternTerm p, PatternTerm o) {
  return {std::move(s), std::move(p), std::move(o)};
}
PatternTerm B(const std::string& iri) {
  return PatternTerm::Bound(Term::Iri(iri));
}
PatternTerm V(const std::string& name) {
  return PatternTerm::Variable(name);
}

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // p1 is rare (1 triple), p2 is common (100 triples).
    dict_ = std::make_unique<Dictionary>();
    auto add = [&](const std::string& s, const std::string& p,
                   const std::string& o) {
      store_.Insert(dict_->Encode(
          {Term::Iri(s), Term::Iri(p), Term::Iri(o)}));
    };
    add("s0", "p1", "o0");
    for (int i = 0; i < 100; ++i) {
      add("s" + std::to_string(i), "p2", "x" + std::to_string(i % 10));
    }
  }

  Hexastore store_;
  std::unique_ptr<Dictionary> dict_;
};

TEST_F(PlannerTest, OrderIsPermutation) {
  std::vector<TriplePattern> patterns = {
      TP(V("a"), B("p2"), V("b")),
      TP(V("b"), B("p1"), V("c")),
      TP(V("c"), B("p2"), V("d")),
  };
  CompiledBgp bgp = CompileBgp(patterns, *dict_);
  auto order = PlanBgp(store_, bgp);
  ASSERT_EQ(order.size(), 3u);
  std::vector<bool> seen(3, false);
  for (std::size_t idx : order) {
    ASSERT_LT(idx, 3u);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST_F(PlannerTest, SelectivePatternGoesFirst) {
  std::vector<TriplePattern> patterns = {
      TP(V("x"), B("p2"), V("y")),  // 100 matches
      TP(V("x"), B("p1"), V("z")),  // 1 match
  };
  CompiledBgp bgp = CompileBgp(patterns, *dict_);
  auto order = PlanBgp(store_, bgp);
  EXPECT_EQ(order[0], 1u);  // the selective p1 pattern first
}

TEST_F(PlannerTest, PrefersConnectedPatterns) {
  // Pattern 1 is disconnected from pattern 0; pattern 2 shares ?x.
  std::vector<TriplePattern> patterns = {
      TP(B("s0"), B("p1"), V("x")),
      TP(V("unrelated"), B("p2"), V("other")),
      TP(V("x"), B("p2"), V("y")),
  };
  CompiledBgp bgp = CompileBgp(patterns, *dict_);
  auto order = PlanBgp(store_, bgp);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 2u);  // connected before the Cartesian one
  EXPECT_EQ(order[2], 1u);
}

TEST_F(PlannerTest, CardinalityEstimateUsesConstants) {
  std::vector<bool> no_bound(2, false);
  CompiledBgp bgp = CompileBgp(
      {TP(V("x"), B("p1"), V("y")), TP(V("x"), B("p2"), V("y"))}, *dict_);
  auto est1 = EstimateCardinality(store_, bgp.patterns[0], no_bound);
  auto est2 = EstimateCardinality(store_, bgp.patterns[1], no_bound);
  EXPECT_EQ(est1, 1u);
  EXPECT_EQ(est2, 100u);
}

TEST_F(PlannerTest, BoundVarsReduceEstimate) {
  CompiledBgp bgp =
      CompileBgp({TP(V("x"), B("p2"), V("y"))}, *dict_);
  std::vector<bool> unbound(bgp.vars.size(), false);
  std::vector<bool> bound(bgp.vars.size(), true);
  EXPECT_LT(EstimateCardinality(store_, bgp.patterns[0], bound),
            EstimateCardinality(store_, bgp.patterns[0], unbound));
}

}  // namespace
}  // namespace hexastore

// Unit tests for the greedy BGP planner, including the delta-aware
// cardinality estimates a DeltaHexastore serves mid-delta, the
// estimate memo, and the golden EXPLAIN rendering.
#include <gtest/gtest.h>

#include "core/hexastore.h"
#include "delta/delta_hexastore.h"
#include "query/planner.h"
#include "query/profile.h"

namespace hexastore {
namespace {

TriplePattern TP(PatternTerm s, PatternTerm p, PatternTerm o) {
  return {std::move(s), std::move(p), std::move(o)};
}
PatternTerm B(const std::string& iri) {
  return PatternTerm::Bound(Term::Iri(iri));
}
PatternTerm V(const std::string& name) {
  return PatternTerm::Variable(name);
}

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // p1 is rare (1 triple), p2 is common (100 triples).
    dict_ = std::make_unique<Dictionary>();
    auto add = [&](const std::string& s, const std::string& p,
                   const std::string& o) {
      store_.Insert(dict_->Encode(
          {Term::Iri(s), Term::Iri(p), Term::Iri(o)}));
    };
    add("s0", "p1", "o0");
    for (int i = 0; i < 100; ++i) {
      add("s" + std::to_string(i), "p2", "x" + std::to_string(i % 10));
    }
  }

  Hexastore store_;
  std::unique_ptr<Dictionary> dict_;
};

TEST_F(PlannerTest, OrderIsPermutation) {
  std::vector<TriplePattern> patterns = {
      TP(V("a"), B("p2"), V("b")),
      TP(V("b"), B("p1"), V("c")),
      TP(V("c"), B("p2"), V("d")),
  };
  CompiledBgp bgp = CompileBgp(patterns, *dict_);
  auto order = PlanBgp(store_, bgp);
  ASSERT_EQ(order.size(), 3u);
  std::vector<bool> seen(3, false);
  for (std::size_t idx : order) {
    ASSERT_LT(idx, 3u);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST_F(PlannerTest, SelectivePatternGoesFirst) {
  std::vector<TriplePattern> patterns = {
      TP(V("x"), B("p2"), V("y")),  // 100 matches
      TP(V("x"), B("p1"), V("z")),  // 1 match
  };
  CompiledBgp bgp = CompileBgp(patterns, *dict_);
  auto order = PlanBgp(store_, bgp);
  EXPECT_EQ(order[0], 1u);  // the selective p1 pattern first
}

TEST_F(PlannerTest, PrefersConnectedPatterns) {
  // Pattern 1 is disconnected from pattern 0; pattern 2 shares ?x.
  std::vector<TriplePattern> patterns = {
      TP(B("s0"), B("p1"), V("x")),
      TP(V("unrelated"), B("p2"), V("other")),
      TP(V("x"), B("p2"), V("y")),
  };
  CompiledBgp bgp = CompileBgp(patterns, *dict_);
  auto order = PlanBgp(store_, bgp);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 2u);  // connected before the Cartesian one
  EXPECT_EQ(order[2], 1u);
}

TEST_F(PlannerTest, CardinalityEstimateUsesConstants) {
  std::vector<bool> no_bound(2, false);
  CompiledBgp bgp = CompileBgp(
      {TP(V("x"), B("p1"), V("y")), TP(V("x"), B("p2"), V("y"))}, *dict_);
  auto est1 = EstimateCardinality(store_, bgp.patterns[0], no_bound);
  auto est2 = EstimateCardinality(store_, bgp.patterns[1], no_bound);
  EXPECT_EQ(est1, 1u);
  EXPECT_EQ(est2, 100u);
}

TEST_F(PlannerTest, BoundVarsReduceEstimate) {
  CompiledBgp bgp =
      CompileBgp({TP(V("x"), B("p2"), V("y"))}, *dict_);
  std::vector<bool> unbound(bgp.vars.size(), false);
  std::vector<bool> bound(bgp.vars.size(), true);
  EXPECT_LT(EstimateCardinality(store_, bgp.patterns[0], bound),
            EstimateCardinality(store_, bgp.patterns[0], unbound));
}

TEST_F(PlannerTest, ProfiledPlanMatchesUnprofiledPlan) {
  std::vector<TriplePattern> patterns = {
      TP(V("a"), B("p2"), V("b")),
      TP(V("b"), B("p1"), V("c")),
      TP(V("c"), B("p2"), V("d")),
  };
  CompiledBgp bgp = CompileBgp(patterns, *dict_);
  PlanProfile profile;
  EXPECT_EQ(PlanBgp(store_, bgp, &profile), PlanBgp(store_, bgp));
  ASSERT_EQ(profile.steps.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(profile.steps[i].pattern_index, PlanBgp(store_, bgp)[i]);
  }
}

TEST_F(PlannerTest, MemoBoundsEstimateProbes) {
  // Three patterns, pairwise variable-disjoint: after the first pick no
  // other pattern's variables get bound, so every memo entry survives
  // and steps 2 and 3 probe the store zero times. Naive O(n^2) probing
  // would issue 3 + 2 + 1 = 6 probes; the memo caps it at 3.
  std::vector<TriplePattern> patterns = {
      TP(V("a"), B("p2"), V("b")),
      TP(V("c"), B("p1"), V("d")),
      TP(V("e"), B("p2"), V("f")),
  };
  CompiledBgp bgp = CompileBgp(patterns, *dict_);
  PlanProfile profile;
  PlanBgp(store_, bgp, &profile);
  EXPECT_EQ(profile.estimate_probes, 3u);
  EXPECT_EQ(profile.memo_hits, 3u);  // steps 2 and 3 reuse entries
}

TEST_F(PlannerTest, MemoInvalidatesOnlyPatternsTouchingNewBindings) {
  // A chain a-b-c: picking the ?b pattern binds ?b, which invalidates
  // both neighbours; the disconnected ?x pattern keeps its memo entry
  // throughout.
  std::vector<TriplePattern> patterns = {
      TP(V("a"), B("p2"), V("b")),      // invalidated when ?b binds
      TP(V("b"), B("p1"), V("c")),      // picked first (est 1)
      TP(V("c"), B("p2"), V("d")),      // invalidated when ?c binds
      TP(V("x"), B("p2"), V("y")),      // never invalidated
  };
  CompiledBgp bgp = CompileBgp(patterns, *dict_);
  PlanProfile profile;
  PlanBgp(store_, bgp, &profile);
  // Step 1 probes all 4. Picking pattern 1 binds ?b and ?c, so patterns
  // 0 and 2 re-probe at step 2 while pattern 3 memo-hits. Binding the
  // picked pattern's remaining vars invalidates the other neighbour
  // once more; the disconnected pattern never re-probes.
  EXPECT_LT(profile.estimate_probes, 10u);  // naive would be 4+3+2+1
  EXPECT_GE(profile.memo_hits, 1u);
  // The memoized plan still equals the recompute-everything plan.
  EXPECT_EQ(PlanBgp(store_, bgp, nullptr), PlanBgp(store_, bgp));
}

TEST_F(PlannerTest, GoldenExplain) {
  // Pinned EXPLAIN text: plan-time facts only, so the rendering is
  // stable across runs and machines for a fixed store state.
  std::vector<TriplePattern> patterns = {
      TP(V("x"), B("p2"), V("y")),
      TP(V("x"), B("p1"), V("z")),
  };
  const std::string expected =
      "plan: bgp, 2 patterns, estimate_probes=3, memo_hits=0\n"
      "  step 1: pattern[1] (?x <p1> ?z)  index=pso bound=1 est=1\n"
      "  step 2: pattern[0] (?x <p2> ?y)  index=spo bound=2 est=10\n";
  EXPECT_EQ(ExplainBgp(store_, *dict_, patterns), expected);
}

TEST_F(PlannerTest, GoldenExplainUnknownConstant) {
  std::vector<TriplePattern> patterns = {
      TP(V("x"), B("never-seen"), V("y")),
  };
  EXPECT_EQ(ExplainBgp(store_, *dict_, patterns),
            "plan: bgp, empty result (constant term not in dictionary)\n");
}

// -- Delta-aware estimates (DeltaHexastore::EstimateMatches) --------------

class DeltaPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dict_ = std::make_unique<Dictionary>();
    p1_ = dict_->Intern(Term::Iri("p1"));
    p2_ = dict_->Intern(Term::Iri("p2"));
    // 100 base triples with p2, fully compacted.
    IdTripleVec base;
    for (Id i = 0; i < 100; ++i) {
      base.push_back(IdTriple{Intern("s", i), p2_, Intern("x", i % 10)});
    }
    std::sort(base.begin(), base.end());
    store_ = std::make_unique<DeltaHexastore>(/*compact_threshold=*/1u
                                              << 20);
    store_->BulkLoad(base);
  }

  Id Intern(const std::string& prefix, Id i) {
    return dict_->Intern(Term::Iri(prefix + std::to_string(i)));
  }

  std::unique_ptr<Dictionary> dict_;
  std::unique_ptr<DeltaHexastore> store_;
  Id p1_ = 0;
  Id p2_ = 0;
};

TEST_F(DeltaPlannerTest, StagedInsertsCountExactly) {
  // One staged p1 triple and 20 staged p2 triples, none compacted.
  store_->Insert(IdTriple{Intern("s", 500), p1_, Intern("x", 500)});
  for (Id i = 0; i < 20; ++i) {
    store_->Insert(IdTriple{Intern("t", i), p2_, Intern("y", i)});
  }
  ASSERT_EQ(store_->StagedOps(), 21u);
  EXPECT_EQ(store_->EstimateMatches(IdPattern{0, p1_, 0}), 1u);
  EXPECT_EQ(store_->EstimateMatches(IdPattern{0, p2_, 0}), 120u);
}

TEST_F(DeltaPlannerTest, TombstonesScaleTheBaseEstimate) {
  // Tombstone half the p2 triples (all of the base is p2, so the
  // uniform-selectivity model is exact here).
  IdTripleVec all = store_->Match(IdPattern{});
  for (std::size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(store_->Erase(all[i]));
  }
  ASSERT_EQ(store_->Stats().staged_tombstones, 50u);
  EXPECT_EQ(store_->EstimateMatches(IdPattern{0, p2_, 0}), 50u);
  EXPECT_EQ(store_->EstimateMatches(IdPattern{}), 50u + 0u);
}

TEST_F(DeltaPlannerTest, PatternTombstoneZeroesTheEstimate) {
  store_->Insert(IdTriple{Intern("s", 500), p1_, Intern("x", 500)});
  ASSERT_EQ(store_->ErasePattern(IdPattern{0, p2_, 0}), 100u);
  EXPECT_EQ(store_->EstimateMatches(IdPattern{0, p2_, 0}), 0u);
  EXPECT_EQ(store_->EstimateMatches(IdPattern{0, p1_, 0}), 1u);
  // Unbound-p patterns subtract the suppressed predicate exactly.
  const Id s = Intern("s", 500);
  EXPECT_EQ(store_->EstimateMatches(IdPattern{s, 0, 0}), 1u);
}

TEST_F(DeltaPlannerTest, ReStagedInsertDedupAcrossLayers) {
  // The double-count regression: a triple sealed into a lower delta
  // layer, pattern-erased, then re-staged in the active buffer used to
  // be counted once per layer. The estimate must see exactly one.
  DeltaOptions options;
  options.compact_threshold = 2;
  options.l0_run_limit = 8;
  DeltaHexastore store(options);
  const IdTriple t1{1, 7, 1};
  const IdTriple t2{2, 8, 2};
  ASSERT_TRUE(store.Insert(t1));
  ASSERT_TRUE(store.Insert(t2));  // seals {t1, t2} into an L0 run
  ASSERT_GT(store.Stats().l0_runs, 0u);
  ASSERT_EQ(store.ErasePattern(IdPattern{0, 7, 0}), 1u);
  ASSERT_TRUE(store.Insert(t1));  // re-staged above its own tombstone
  ASSERT_EQ(store.size(), 2u);

  EXPECT_EQ(store.EstimateMatches(IdPattern{1, 0, 0}), 1u);
  EXPECT_EQ(store.EstimateMatches(IdPattern{}), 2u);
}

TEST_F(DeltaPlannerTest, FullyBoundPatternIsExact) {
  // Fully-bound patterns short-circuit through the verdict chain: the
  // estimate is the membership answer, not a scaled guess.
  IdTripleVec all = store_->Match(IdPattern{});
  ASSERT_TRUE(store_->Erase(all[0]));
  EXPECT_EQ(
      store_->EstimateMatches(IdPattern{all[0].s, all[0].p, all[0].o}), 0u);
  EXPECT_EQ(
      store_->EstimateMatches(IdPattern{all[1].s, all[1].p, all[1].o}), 1u);
  const IdTriple staged{Intern("s", 900), p1_, Intern("x", 900)};
  ASSERT_TRUE(store_->Insert(staged));
  EXPECT_EQ(store_->EstimateMatches(IdPattern{staged.s, staged.p, staged.o}),
            1u);
}

TEST_F(DeltaPlannerTest, PlanPrefersStagedSelectivePatternMidDelta) {
  // The selective pattern exists ONLY in the staging buffer: a planner
  // reading just the base would see zero for p1 and tie-break wrong; the
  // delta-aware estimate ranks it first.
  store_->Insert(IdTriple{Intern("s", 0), p1_, Intern("x", 500)});
  ASSERT_GT(store_->StagedOps(), 0u);
  CompiledBgp bgp = CompileBgp(
      {TriplePattern{PatternTerm::Variable("a"),
                     PatternTerm::Bound(Term::Iri("p2")),
                     PatternTerm::Variable("b")},
       TriplePattern{PatternTerm::Variable("a"),
                     PatternTerm::Bound(Term::Iri("p1")),
                     PatternTerm::Variable("c")}},
      *dict_);
  auto order = PlanBgp(*store_, bgp);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // the 1-match staged p1 pattern first
}

}  // namespace
}  // namespace hexastore

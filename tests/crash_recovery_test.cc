// Crash-recovery torture tests for the durability subsystem.
//
// The central contract: after a crash anywhere inside the WAL tail,
// recovery rebuilds EXACTLY the committed prefix — verified byte-for-byte
// by comparing id-level snapshot serializations of the recovered store
// against an oracle that applied only the records whose frames survived.
// Crashes are simulated by truncating (or corrupting) a copy of the WAL
// directory at chosen byte offsets.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "delta/delta_hexastore.h"
#include "io/snapshot.h"
#include "shard/sharded_hexastore.h"
#include "util/rng.h"
#include "wal/durable_store.h"
#include "wal/file_util.h"
#include "wal/manifest.h"
#include "wal/wal_reader.h"

namespace hexastore {
namespace {

namespace fs = std::filesystem;

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (fs::temp_directory_path() /
             (std::string("hexa_crash_test_") + info->name() + "_" +
              std::to_string(::getpid())))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string Dir(const std::string& name) const {
    return (fs::path(root_) / name).string();
  }

  // Fresh copy of a WAL directory (the "disk image" a crash left).
  std::string CloneDir(const std::string& src, const std::string& name) {
    const std::string dst = Dir(name);
    fs::remove_all(dst);
    fs::copy(src, dst, fs::copy_options::recursive);
    return dst;
  }

  std::string root_;
};

// Canonical byte serialization of a store's logical contents.
template <typename StoreT>
std::string ContentsBytes(const StoreT& store) {
  std::ostringstream out;
  EXPECT_TRUE(SaveTripleSnapshot(store.Match(IdPattern{}), out).ok());
  return std::move(out).str();
}

// Applies one WAL record to a plain in-memory store (the oracle).
void ApplyToOracle(DeltaHexastore* store, const WalRecord& record) {
  switch (record.op) {
    case WalOp::kInsert:
      store->Insert(record.triple());
      break;
    case WalOp::kErase:
      store->Erase(record.triple());
      break;
    case WalOp::kClear:
      store->Clear();
      break;
    case WalOp::kErasePattern:
      store->ErasePattern(record.pattern());
      break;
  }
}

// A deterministic mixed workload: inserts, erases, pattern erases and a
// Clear, all through the durable store's logged entry points.
void RunWorkload(DurableDeltaHexastore* store, int ops, std::uint64_t seed) {
  Rng rng(seed);
  constexpr Id kUniverse = 9;
  for (int i = 0; i < ops; ++i) {
    const double dice = rng.NextDouble();
    const IdTriple t{rng.UniformRange(1, kUniverse),
                     rng.UniformRange(1, kUniverse),
                     rng.UniformRange(1, kUniverse)};
    if (dice < 0.62) {
      store->Insert(t);
    } else if (dice < 0.90) {
      store->Erase(t);
    } else if (dice < 0.94) {
      store->ErasePattern(IdPattern{0, t.p, 0});  // pattern-tombstone path
    } else if (dice < 0.97) {
      store->ErasePattern(IdPattern{t.s, 0, 0});  // fallback path
    } else {
      store->Clear();
    }
  }
}

TEST_F(CrashRecoveryTest, CleanReopenRecoversEverything) {
  DurabilityOptions options;
  options.dir = Dir("store");
  options.mode = DurabilityMode::kBatched;
  options.compact_threshold = 1u << 20;  // no checkpoint: pure replay

  DeltaHexastore oracle;
  {
    auto opened = DurableDeltaHexastore::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    RunWorkload(opened.value().get(), 500, 0xFEED);
    ASSERT_TRUE(opened.value()->status().ok());
    // Mirror through the log so the oracle sees identical ops.
    auto contents = ReadWalSegment(
        (fs::path(options.dir) / WalSegmentFileName(1)).string(), true);
    ASSERT_TRUE(contents.ok());
    ASSERT_FALSE(contents.value().torn_tail);
    for (const WalRecord& r : contents.value().records) {
      ApplyToOracle(&oracle, r);
    }
    EXPECT_EQ(ContentsBytes(*opened.value()), ContentsBytes(oracle));
  }  // destructor syncs the tail

  auto reopened = DurableDeltaHexastore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened.value()->recovery_info().torn_tail);
  EXPECT_GT(reopened.value()->recovery_info().replayed_records, 0u);
  EXPECT_EQ(ContentsBytes(*reopened.value()), ContentsBytes(oracle));
  std::string err;
  EXPECT_TRUE(reopened.value()->CheckInvariants(&err)) << err;
}

TEST_F(CrashRecoveryTest, CheckpointTruncatesLogAndBoundsReplay) {
  DurabilityOptions options;
  options.dir = Dir("store");
  options.mode = DurabilityMode::kNone;
  options.compact_threshold = 64;  // frequent compaction => checkpoints

  std::string expected;
  {
    auto opened = DurableDeltaHexastore::Open(options);
    ASSERT_TRUE(opened.ok());
    // Distinct inserts so the staging buffer actually fills to the
    // threshold (the mixed workload's Clears would keep resetting it).
    for (Id i = 1; i <= 500; ++i) {
      ASSERT_TRUE(opened.value()->Insert(IdTriple{i, i % 7 + 1, i + 1}));
    }
    for (Id i = 1; i <= 100; ++i) {
      ASSERT_TRUE(opened.value()->Erase(IdTriple{i, i % 7 + 1, i + 1}));
    }
    ASSERT_TRUE(opened.value()->status().ok());
    const WalStats stats = opened.value()->wal_stats();
    EXPECT_GT(stats.checkpoints, 0u);
    expected = ContentsBytes(*opened.value());
  }

  // The manifest points past the pruned segments; nothing older remains.
  auto manifest = ReadWalManifest(options.dir);
  ASSERT_TRUE(manifest.ok());
  EXPECT_GT(manifest.value().first_segment_id, 1u);
  EXPECT_FALSE(manifest.value().snapshot_file.empty());
  auto segments = ListWalSegments(options.dir);
  ASSERT_TRUE(segments.ok());
  for (std::uint64_t id : segments.value()) {
    EXPECT_GE(id, manifest.value().first_segment_id);
  }

  auto reopened = DurableDeltaHexastore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened.value()->recovery_info().loaded_snapshot);
  // Replay is bounded by the ops since the last checkpoint, not the
  // whole history.
  EXPECT_LT(reopened.value()->recovery_info().replayed_records, 600u);
  EXPECT_EQ(ContentsBytes(*reopened.value()), expected);
}

// The acceptance-criteria torture test: truncate the WAL at every byte
// boundary of the last record and at >= 100 randomized offsets across
// the whole log; replay must recover exactly the committed prefix,
// byte-identical (via snapshot serialization) to the prefix oracle.
TEST_F(CrashRecoveryTest, TruncationAtAnyOffsetRecoversCommittedPrefix) {
  DurabilityOptions options;
  options.dir = Dir("golden");
  options.mode = DurabilityMode::kNone;  // simulated crash: file truncation
  options.compact_threshold = 1u << 20;
  {
    auto opened = DurableDeltaHexastore::Open(options);
    ASSERT_TRUE(opened.ok());
    RunWorkload(opened.value().get(), 200, 0xCAFE);
    ASSERT_TRUE(opened.value()->Flush().ok());
  }

  // Parse the (single) golden segment, tracking each record's end
  // offset: a truncation at offset c commits exactly the records whose
  // frames end at or before c.
  const std::string segment_name = WalSegmentFileName(1);
  const std::string golden_segment =
      (fs::path(options.dir) / segment_name).string();
  std::string raw;
  ASSERT_TRUE(ReadFileToString(golden_segment, &raw).ok());
  std::vector<WalRecord> records;
  std::vector<std::size_t> end_offsets;  // end_offsets[i]: after record i
  {
    std::size_t pos = kWalHeaderBytes;
    WalRecord r;
    while (ParseWalRecord(raw, &pos, &r) == WalParse::kRecord) {
      records.push_back(r);
      end_offsets.push_back(pos);
    }
    ASSERT_EQ(pos, raw.size()) << "golden segment has a torn tail";
  }
  ASSERT_GE(records.size(), 100u);

  // Prefix oracles, serialized once.
  std::vector<std::string> oracle_bytes(records.size() + 1);
  {
    DeltaHexastore oracle;
    oracle_bytes[0] = ContentsBytes(oracle);
    for (std::size_t i = 0; i < records.size(); ++i) {
      ApplyToOracle(&oracle, records[i]);
      oracle_bytes[i + 1] = ContentsBytes(oracle);
    }
  }
  auto committed_prefix = [&end_offsets](std::size_t cut) {
    std::size_t n = 0;
    while (n < end_offsets.size() && end_offsets[n] <= cut) {
      ++n;
    }
    return n;
  };

  // Crash points: every byte boundary of the last record's frame, plus
  // >= 100 randomized offsets across the file.
  std::set<std::size_t> cuts;
  const std::size_t last_start =
      records.size() >= 2 ? end_offsets[records.size() - 2]
                          : kWalHeaderBytes;
  for (std::size_t c = last_start; c <= raw.size(); ++c) {
    cuts.insert(c);
  }
  Rng rng(0xD1CE);
  while (cuts.size() < 100 + (raw.size() - last_start) + 1) {
    cuts.insert(static_cast<std::size_t>(
        rng.UniformRange(kWalHeaderBytes, raw.size())));
  }

  int verified = 0;
  for (std::size_t cut : cuts) {
    const std::string dir = CloneDir(options.dir, "crash");
    ASSERT_TRUE(
        TruncateFile((fs::path(dir) / segment_name).string(), cut).ok());
    DurabilityOptions crashed = options;
    crashed.dir = dir;
    auto recovered = DurableDeltaHexastore::Open(crashed);
    ASSERT_TRUE(recovered.ok())
        << "cut at " << cut << ": " << recovered.status().ToString();
    const std::size_t expected_prefix = committed_prefix(cut);
    EXPECT_EQ(recovered.value()->recovery_info().replayed_records,
              expected_prefix)
        << "cut at " << cut;
    EXPECT_EQ(ContentsBytes(*recovered.value()),
              oracle_bytes[expected_prefix])
        << "cut at " << cut;
    std::string err;
    EXPECT_TRUE(recovered.value()->CheckInvariants(&err))
        << "cut at " << cut << ": " << err;
    ++verified;
  }
  EXPECT_GE(verified, 100);
}

// After a torn-tail recovery the store must keep working: accept writes,
// checkpoint, and survive another reopen.
TEST_F(CrashRecoveryTest, RecoveredStoreStaysWritableAndReopenable) {
  DurabilityOptions options;
  options.dir = Dir("store");
  options.mode = DurabilityMode::kNone;
  options.compact_threshold = 1u << 20;
  {
    auto opened = DurableDeltaHexastore::Open(options);
    ASSERT_TRUE(opened.ok());
    RunWorkload(opened.value().get(), 80, 0xAB);
    ASSERT_TRUE(opened.value()->Flush().ok());
  }
  // Chop mid-record: 3 bytes past the header of the tail is inside the
  // first record's frame.
  const std::string segment =
      (fs::path(options.dir) / WalSegmentFileName(1)).string();
  std::string raw;
  ASSERT_TRUE(ReadFileToString(segment, &raw).ok());
  ASSERT_TRUE(TruncateFile(segment, raw.size() - 3).ok());

  std::string after_recovery;
  {
    auto recovered = DurableDeltaHexastore::Open(options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(recovered.value()->recovery_info().torn_tail);
    EXPECT_TRUE(recovered.value()->Insert(IdTriple{101, 102, 103}));
    ASSERT_TRUE(recovered.value()->Checkpoint().ok());
    EXPECT_TRUE(recovered.value()->Insert(IdTriple{104, 105, 106}));
    after_recovery = ContentsBytes(*recovered.value());
  }
  auto reopened = DurableDeltaHexastore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(ContentsBytes(*reopened.value()), after_recovery);
  EXPECT_TRUE(reopened.value()->Contains(IdTriple{101, 102, 103}));
  EXPECT_TRUE(reopened.value()->Contains(IdTriple{104, 105, 106}));
}

// Fuzz-style corruption (the ntriples_fuzz_test sibling for the WAL):
// random byte flips inside the log must never crash recovery; when
// recovery succeeds the result must be SOME committed prefix of the
// oracle history, never an invented state.
TEST_F(CrashRecoveryTest, RandomCorruptionYieldsPrefixOrCleanError) {
  DurabilityOptions options;
  options.dir = Dir("golden");
  options.mode = DurabilityMode::kNone;
  options.compact_threshold = 1u << 20;
  {
    auto opened = DurableDeltaHexastore::Open(options);
    ASSERT_TRUE(opened.ok());
    RunWorkload(opened.value().get(), 60, 0x5EED);
    ASSERT_TRUE(opened.value()->Flush().ok());
  }
  const std::string segment_name = WalSegmentFileName(1);
  std::string raw;
  ASSERT_TRUE(ReadFileToString(
                  (fs::path(options.dir) / segment_name).string(), &raw)
                  .ok());
  std::vector<WalRecord> records;
  {
    std::size_t pos = kWalHeaderBytes;
    WalRecord r;
    while (ParseWalRecord(raw, &pos, &r) == WalParse::kRecord) {
      records.push_back(r);
    }
  }
  std::set<std::string> prefix_states;
  {
    DeltaHexastore oracle;
    prefix_states.insert(ContentsBytes(oracle));
    for (const WalRecord& r : records) {
      ApplyToOracle(&oracle, r);
      prefix_states.insert(ContentsBytes(oracle));
    }
  }

  Rng rng(0xF00D);
  for (int trial = 0; trial < 100; ++trial) {
    const std::string dir = CloneDir(options.dir, "fuzz");
    const std::string segment = (fs::path(dir) / segment_name).string();
    std::string corrupted = raw;
    const std::size_t at = static_cast<std::size_t>(
        rng.UniformRange(0, corrupted.size() - 1));
    corrupted[at] = static_cast<char>(
        corrupted[at] ^ static_cast<char>(rng.UniformRange(1, 255)));
    ASSERT_TRUE(AtomicWriteFile(segment, corrupted).ok());

    DurabilityOptions crashed = options;
    crashed.dir = dir;
    auto recovered = DurableDeltaHexastore::Open(crashed);
    if (!recovered.ok()) {
      continue;  // clean, reported failure is acceptable
    }
    EXPECT_TRUE(prefix_states.count(ContentsBytes(*recovered.value())) > 0)
        << "corrupted byte " << at
        << " produced a state outside the committed-prefix set";
  }
}

// A crash between creat(2) and the segment-header write leaves an empty
// (or short) wal file. Recovery must remove it — not truncate it to a
// headerless husk that fails the strict non-newest read on every later
// open (regression: the second reopen used to fail permanently).
TEST_F(CrashRecoveryTest, EmptyCrashCreatedSegmentDoesNotBrickLaterOpens) {
  DurabilityOptions options;
  options.dir = Dir("store");
  options.mode = DurabilityMode::kNone;
  {
    auto opened = DurableDeltaHexastore::Open(options);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened.value()->Insert(IdTriple{1, 2, 3}));
  }
  // Simulate the crash: an empty next segment appears on disk.
  {
    std::ofstream empty(
        (fs::path(options.dir) / WalSegmentFileName(2)).string(),
        std::ios::binary);
  }
  for (int reopen = 0; reopen < 3; ++reopen) {
    auto recovered = DurableDeltaHexastore::Open(options);
    ASSERT_TRUE(recovered.ok())
        << "reopen " << reopen << ": " << recovered.status().ToString();
    EXPECT_TRUE(recovered.value()->Contains(IdTriple{1, 2, 3}));
    EXPECT_EQ(recovered.value()->size(), 1u);
  }
}

// A torn tail is only legal in the NEWEST segment: damage in an older
// one is real data loss and recovery must refuse, not silently drop the
// later segments.
TEST_F(CrashRecoveryTest, CorruptionInOlderSegmentFailsOpen) {
  DurabilityOptions options;
  options.dir = Dir("store");
  options.mode = DurabilityMode::kNone;
  options.compact_threshold = 1u << 20;  // no checkpoint: segments pile up
  options.segment_bytes = 128;           // force several rotations
  {
    auto opened = DurableDeltaHexastore::Open(options);
    ASSERT_TRUE(opened.ok());
    for (Id i = 1; i <= 200; ++i) {
      opened.value()->Insert(IdTriple{i, i + 1, i + 2});
    }
    ASSERT_TRUE(opened.value()->Flush().ok());
  }
  auto segments = ListWalSegments(options.dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_GE(segments.value().size(), 2u);
  // Chop the tail off the OLDEST segment.
  const std::string oldest =
      (fs::path(options.dir) / WalSegmentFileName(segments.value().front()))
          .string();
  std::string raw;
  ASSERT_TRUE(ReadFileToString(oldest, &raw).ok());
  ASSERT_TRUE(TruncateFile(oldest, raw.size() - 2).ok());

  auto reopened = DurableDeltaHexastore::Open(options);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kParseError);
}

// -- Sharded crash recovery -------------------------------------------------
//
// A ShardedHexastore keeps one independent WAL per shard. The recovery
// contract generalizes per shard: after a crash, EVERY shard recovers
// exactly its own committed prefix, and the facade's contents are the
// disjoint union of those prefixes. A crash mid-group-commit — where
// the group leader fsynced some shard WALs but not others — is exactly
// a crash whose per-shard cuts differ, so the randomized cut vectors
// below (including "no cut" for some shards) cover it.

std::string ShardDir(const std::string& root, std::size_t i) {
  std::string digits = std::to_string(i);
  if (digits.size() < 3) {
    digits.insert(0, 3 - digits.size(), '0');
  }
  return (fs::path(root) / ("shard-" + digits)).string();
}

void RunShardedWorkload(ShardedHexastore* store, int ops,
                        std::uint64_t seed) {
  Rng rng(seed);
  constexpr Id kUniverse = 9;
  for (int i = 0; i < ops; ++i) {
    const double dice = rng.NextDouble();
    const IdTriple t{rng.UniformRange(1, kUniverse),
                     rng.UniformRange(1, kUniverse),
                     rng.UniformRange(1, kUniverse)};
    if (dice < 0.64) {
      store->Insert(t);
    } else if (dice < 0.92) {
      store->Erase(t);
    } else if (dice < 0.96) {
      store->ErasePattern(IdPattern{0, t.p, 0});  // fan-out to all shards
    } else {
      store->ErasePattern(IdPattern{t.s, 0, 0});  // routed to one shard
    }
  }
}

TEST_F(CrashRecoveryTest, ShardedCleanReopenRecoversEverything) {
  ShardedOptions options;
  options.shards = 4;
  options.durable = true;
  options.durability.dir = Dir("sharded");
  options.durability.mode = DurabilityMode::kBatched;
  options.durability.compact_threshold = 1u << 20;  // pure replay

  std::string expected;
  {
    auto opened = ShardedHexastore::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    RunShardedWorkload(opened.value().get(), 600, 0xFEED);
    ASSERT_TRUE(opened.value()->status().ok());
    expected = ContentsBytes(*opened.value());
    ASSERT_FALSE(expected.empty());
  }  // per-shard destructors sync every WAL tail

  auto reopened = ShardedHexastore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(ContentsBytes(*reopened.value()), expected);
  std::string err;
  EXPECT_TRUE(reopened.value()->CheckInvariants(&err)) << err;
  // Every shard actually replayed its own log.
  std::uint64_t replayed = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    replayed +=
        reopened.value()->durable_shard(i)->recovery_info().replayed_records;
  }
  EXPECT_GT(replayed, 0u);
}

// The sharded committed-prefix torture test: randomized crash points
// across the per-shard WALs — each trial truncates a random subset of
// shard logs at random byte offsets (mid-group-commit: some shards
// durable further than others) — must recover every shard to its own
// committed prefix, byte-identical to the per-shard prefix oracles'
// union.
TEST_F(CrashRecoveryTest, ShardedRandomCrashPointsRecoverPerShardPrefixes) {
  constexpr std::size_t kShards = 3;
  ShardedOptions options;
  options.shards = kShards;
  options.durable = true;
  options.durability.dir = Dir("sharded_golden");
  options.durability.mode = DurabilityMode::kNone;  // crash = truncation
  options.durability.compact_threshold = 1u << 20;
  {
    auto opened = ShardedHexastore::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    RunShardedWorkload(opened.value().get(), 300, 0xCAFE);
    ASSERT_TRUE(opened.value()->Flush().ok());
  }

  // Parse each shard's (single) golden segment with per-record end
  // offsets, for the cut -> committed-prefix mapping.
  const std::string segment_name = WalSegmentFileName(1);
  struct ShardLog {
    std::string raw;
    std::vector<WalRecord> records;
    std::vector<std::size_t> end_offsets;
  };
  std::vector<ShardLog> logs(kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    const std::string seg =
        (fs::path(ShardDir(options.durability.dir, i)) / segment_name)
            .string();
    ASSERT_TRUE(ReadFileToString(seg, &logs[i].raw).ok());
    std::size_t pos = kWalHeaderBytes;
    WalRecord r;
    while (ParseWalRecord(logs[i].raw, &pos, &r) == WalParse::kRecord) {
      logs[i].records.push_back(r);
      logs[i].end_offsets.push_back(pos);
    }
    ASSERT_EQ(pos, logs[i].raw.size()) << "shard " << i << " torn tail";
    ASSERT_GT(logs[i].records.size(), 10u)
        << "shard " << i << " saw too few ops to exercise recovery";
  }

  Rng rng(0xD1CE);
  for (int trial = 0; trial < 40; ++trial) {
    const std::string dir = CloneDir(options.durability.dir, "sharded_crash");
    std::vector<std::size_t> prefix(kShards);
    for (std::size_t i = 0; i < kShards; ++i) {
      if (rng.Bernoulli(0.3)) {
        prefix[i] = logs[i].records.size();  // this shard's fsync landed
        continue;
      }
      const std::size_t cut = static_cast<std::size_t>(
          rng.UniformRange(kWalHeaderBytes, logs[i].raw.size()));
      ASSERT_TRUE(
          TruncateFile((fs::path(ShardDir(dir, i)) / segment_name).string(),
                       cut)
              .ok());
      std::size_t n = 0;
      while (n < logs[i].end_offsets.size() &&
             logs[i].end_offsets[n] <= cut) {
        ++n;
      }
      prefix[i] = n;
    }

    ShardedOptions crashed = options;
    crashed.durability.dir = dir;
    auto recovered = ShardedHexastore::Open(crashed);
    ASSERT_TRUE(recovered.ok())
        << "trial " << trial << ": " << recovered.status().ToString();

    // Per-shard prefix oracles; the facade union is their disjoint
    // union (subject partitioning), sorted once for serialization.
    IdTripleVec expected_union;
    for (std::size_t i = 0; i < kShards; ++i) {
      DeltaHexastore oracle;
      for (std::size_t r = 0; r < prefix[i]; ++r) {
        ApplyToOracle(&oracle, logs[i].records[r]);
      }
      const IdTripleVec part = oracle.Match(IdPattern{});
      expected_union.insert(expected_union.end(), part.begin(), part.end());
      EXPECT_EQ(
          recovered.value()->durable_shard(i)->recovery_info()
              .replayed_records,
          prefix[i])
          << "trial " << trial << " shard " << i;
    }
    std::sort(expected_union.begin(), expected_union.end());
    std::ostringstream expected;
    ASSERT_TRUE(SaveTripleSnapshot(expected_union, expected).ok());
    EXPECT_EQ(ContentsBytes(*recovered.value()), std::move(expected).str())
        << "trial " << trial;
    std::string err;
    EXPECT_TRUE(recovered.value()->CheckInvariants(&err))
        << "trial " << trial << ": " << err;
  }
}

// Changing the shard count between runs would silently misroute every
// bound-subject read and erase; the SHARDS manifest turns that into a
// clear config error instead of corruption.
TEST_F(CrashRecoveryTest, ShardCountChangeRejectedWithClearError) {
  ShardedOptions options;
  options.shards = 4;
  options.durable = true;
  options.durability.dir = Dir("sharded");
  options.durability.mode = DurabilityMode::kNone;
  std::string expected;
  {
    auto opened = ShardedHexastore::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    RunShardedWorkload(opened.value().get(), 120, 0xAB);
    ASSERT_TRUE(opened.value()->Flush().ok());
    expected = ContentsBytes(*opened.value());
  }

  ShardedOptions wrong = options;
  wrong.shards = 2;
  auto rejected = ShardedHexastore::Open(wrong);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("shard count mismatch"),
            std::string::npos)
      << rejected.status().ToString();
  EXPECT_NE(rejected.status().message().find("4"), std::string::npos);
  EXPECT_NE(rejected.status().message().find("2"), std::string::npos);

  // The rejection was clean: the recorded count still opens, data intact.
  auto reopened = ShardedHexastore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(ContentsBytes(*reopened.value()), expected);
}

}  // namespace
}  // namespace hexastore

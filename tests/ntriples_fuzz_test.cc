// Randomized round-trip property tests for the N-Triples serializer and
// parser: arbitrary generated terms (including hostile characters) must
// survive serialize -> parse unchanged, and the parser must never crash
// on mangled input.
#include <gtest/gtest.h>

#include "rdf/ntriples.h"
#include "util/rng.h"

namespace hexastore {
namespace {

std::string RandomLexical(Rng* rng, std::size_t max_len) {
  static const char kAlphabet[] =
      "abcXYZ019 _-\t\n\r\"\\'#<>@^^.:{}()";
  const std::size_t n = rng->Uniform(max_len + 1);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out += kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)];
  }
  return out;
}

std::string RandomIriSafe(Rng* rng, std::size_t max_len) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789/:._-#?=";
  const std::size_t n = 1 + rng->Uniform(max_len);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out += kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)];
  }
  return out;
}

std::string RandomLabel(Rng* rng) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  const std::size_t n = 1 + rng->Uniform(12);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out += kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)];
  }
  return out;
}

Term RandomTerm(Rng* rng, bool allow_literal) {
  const std::uint64_t kind = rng->Uniform(allow_literal ? 4 : 2);
  switch (kind) {
    case 0:
      return Term::Iri(RandomIriSafe(rng, 40));
    case 1:
      return Term::Blank(RandomLabel(rng));
    case 2: {
      // Literal, possibly language-tagged.
      std::string lex = RandomLexical(rng, 30);
      if (rng->Bernoulli(0.3)) {
        return Term::LangLiteral(std::move(lex), RandomLabel(rng));
      }
      return Term::Literal(std::move(lex));
    }
    default:
      return Term::TypedLiteral(RandomLexical(rng, 30),
                                RandomIriSafe(rng, 30));
  }
}

class NTriplesFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NTriplesFuzzTest, SerializeParseRoundTrip) {
  Rng rng(GetParam());
  std::vector<Triple> triples;
  for (int i = 0; i < 300; ++i) {
    triples.push_back(Triple{RandomTerm(&rng, false),
                             Term::Iri(RandomIriSafe(&rng, 30)),
                             RandomTerm(&rng, true)});
  }
  std::string text = ToNTriplesString(triples);
  auto parsed = ParseNTriplesDocument(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), triples.size());
  for (std::size_t i = 0; i < triples.size(); ++i) {
    EXPECT_EQ(parsed.value()[i], triples[i]) << "triple " << i;
  }
}

TEST_P(NTriplesFuzzTest, ParserNeverCrashesOnMangledInput) {
  Rng rng(GetParam() ^ 0x5eed);
  std::vector<Triple> triples;
  for (int i = 0; i < 50; ++i) {
    triples.push_back(Triple{RandomTerm(&rng, false),
                             Term::Iri(RandomIriSafe(&rng, 20)),
                             RandomTerm(&rng, true)});
  }
  std::string text = ToNTriplesString(triples);
  // Mutate random bytes; parser must return (ok or error) without UB.
  for (int round = 0; round < 200; ++round) {
    std::string mangled = text;
    const std::size_t mutations = 1 + rng.Uniform(5);
    for (std::size_t m = 0; m < mutations; ++m) {
      if (mangled.empty()) {
        break;
      }
      std::size_t pos = rng.Uniform(mangled.size());
      switch (rng.Uniform(3)) {
        case 0:
          mangled[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          mangled.erase(pos, 1);
          break;
        default:
          mangled.insert(pos, 1,
                         static_cast<char>(32 + rng.Uniform(95)));
      }
    }
    std::size_t skipped = 0;
    auto lenient =
        ParseNTriplesDocument(mangled, /*strict=*/false, &skipped);
    EXPECT_TRUE(lenient.ok());  // lenient mode always succeeds
    auto strict = ParseNTriplesDocument(mangled, /*strict=*/true);
    (void)strict;  // either outcome is fine; must not crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NTriplesFuzzTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace hexastore

// Tests for the concurrent SPARQL HTTP server (server/server.h):
// socket-free routing through Server::Handle, end-to-end socket round
// trips, write visibility (publish-on-write), admission-control 503s,
// and a concurrent clients-vs-compactor stress run (the TSan CI job
// leans on this one).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "delta/delta_hexastore.h"
#include "dict/dictionary.h"
#include "query/session.h"
#include "server/http.h"
#include "server/server.h"
#include "server/store_options.h"

namespace hexastore {
namespace {

HttpRequest MakeRequest(std::string method, std::string path,
                        std::vector<std::pair<std::string, std::string>>
                            params = {},
                        std::string body = "") {
  HttpRequest request;
  request.method = std::move(method);
  request.path = std::move(path);
  request.params = std::move(params);
  request.body = std::move(body);
  return request;
}

// Minimal blocking HTTP client for the socket-level tests. One request
// per call; supports keep-alive reuse.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) : port_(port) {}
  ~TestClient() { Close(); }

  /// Returns the HTTP status (or -1 on transport error) and fills body.
  int Request(const std::string& method, const std::string& target,
              const std::string& body, std::string* out = nullptr) {
    if (fd_ < 0 && !Connect()) {
      return -1;
    }
    std::string req = method + " " + target + " HTTP/1.1\r\n" +
                      "Host: t\r\nContent-Length: " +
                      std::to_string(body.size()) + "\r\n\r\n" + body;
    if (::send(fd_, req.data(), req.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(req.size())) {
      Close();
      return -1;
    }
    return ReadResponse(out);
  }

  /// Sends raw bytes without waiting for a response (flood helper).
  bool SendRaw(const std::string& data) {
    if (fd_ < 0 && !Connect()) {
      return false;
    }
    return ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(data.size());
  }

  int ReadResponse(std::string* out) {
    std::string buf;
    char chunk[4096];
    std::size_t header_end = std::string::npos;
    while (header_end == std::string::npos) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        Close();
        return -1;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
      header_end = buf.find("\r\n\r\n");
    }
    int status = -1;
    if (std::size_t sp = buf.find(' '); sp != std::string::npos) {
      status = std::atoi(buf.c_str() + sp + 1);
    }
    std::size_t content_length = 0;
    std::string lower = buf.substr(0, header_end);
    for (char& c : lower) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (std::size_t pos = lower.find("content-length:");
        pos != std::string::npos) {
      content_length = std::strtoull(lower.c_str() + pos + 15, nullptr, 10);
    }
    std::size_t body_start = header_end + 4;
    while (buf.size() - body_start < content_length) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        Close();
        return -1;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    if (out != nullptr) {
      out->assign(buf, body_start, content_length);
    }
    if (lower.find("connection: close") != std::string::npos) {
      Close();
    }
    return status;
  }

 private:
  bool Connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::uint16_t port_;
  int fd_ = -1;
};

class ServerHandleTest : public ::testing::Test {
 protected:
  ServerHandleTest() : server_(store_, dict_, ServerOptions{}) {
    for (int i = 0; i < 4; ++i) {
      store_.Insert(dict_.Encode(
          Triple{Term::Iri("http://x/s" + std::to_string(i)),
                 Term::Iri("http://x/p"), Term::Iri("http://x/o")}));
    }
    store_.GetSnapshot();  // publish for wait-free sessions
    query::SessionOptions options;
    options.pin = query::PinPolicy::kWaitFree;
    session_ = std::make_unique<query::Session>(store_, dict_, options);
  }

  HttpResponse Handle(const HttpRequest& request) {
    return server_.Handle(request, session_.get());
  }

  Dictionary dict_;
  DeltaHexastore store_;
  Server server_;  // never Start()ed: routing only
  std::unique_ptr<query::Session> session_;
};

TEST_F(ServerHandleTest, QueryReturnsSparqlJson) {
  HttpResponse response = Handle(MakeRequest(
      "GET", "/query", {{"q", "SELECT ?s WHERE { ?s <http://x/p> ?o }"}}));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/sparql-results+json");
  EXPECT_NE(response.body.find("\"bindings\""), std::string::npos);
  EXPECT_NE(response.body.find("http://x/s0"), std::string::npos);
}

TEST_F(ServerHandleTest, QueryViaPostBody) {
  HttpResponse response =
      Handle(MakeRequest("POST", "/query", {},
                         "SELECT ?s WHERE { ?s <http://x/p> ?o }"));
  EXPECT_EQ(response.status, 200);
}

TEST_F(ServerHandleTest, MissingQueryIs400) {
  EXPECT_EQ(Handle(MakeRequest("GET", "/query")).status, 400);
}

TEST_F(ServerHandleTest, ParseErrorIs400) {
  EXPECT_EQ(
      Handle(MakeRequest("GET", "/query", {{"q", "SELECT WHERE {"}})).status,
      400);
}

TEST_F(ServerHandleTest, UnknownPathIs404) {
  EXPECT_EQ(Handle(MakeRequest("GET", "/nope")).status, 404);
}

TEST_F(ServerHandleTest, InsertRequiresPost) {
  EXPECT_EQ(Handle(MakeRequest("GET", "/insert")).status, 405);
}

TEST_F(ServerHandleTest, MalformedInsertIs400) {
  EXPECT_EQ(
      Handle(MakeRequest("POST", "/insert", {}, "this is not n-triples"))
          .status,
      400);
}

TEST_F(ServerHandleTest, InsertThenQuerySeesTheWrite) {
  HttpResponse insert = Handle(MakeRequest(
      "POST", "/insert", {},
      "<http://x/new> <http://x/p> <http://x/o> .\n"));
  EXPECT_EQ(insert.status, 200);
  EXPECT_NE(insert.body.find("\"inserted\":1"), std::string::npos);

  // Publish-on-write: the wait-free session must see it immediately.
  HttpResponse query = Handle(MakeRequest(
      "GET", "/query", {{"q", "SELECT ?s WHERE { ?s <http://x/p> ?o }"}}));
  EXPECT_NE(query.body.find("http://x/new"), std::string::npos);

  HttpResponse erase = Handle(MakeRequest(
      "POST", "/erase", {},
      "<http://x/new> <http://x/p> <http://x/o> .\n"));
  EXPECT_EQ(erase.status, 200);
  EXPECT_NE(erase.body.find("\"erased\":1"), std::string::npos);
  HttpResponse after = Handle(MakeRequest(
      "GET", "/query", {{"q", "SELECT ?s WHERE { ?s <http://x/p> ?o }"}}));
  EXPECT_EQ(after.body.find("http://x/new"), std::string::npos);
}

TEST_F(ServerHandleTest, MetricsExposeServerAndPlanCacheFamilies) {
  HttpResponse metrics = Handle(MakeRequest("GET", "/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("hexa_server_requests"), std::string::npos);
  EXPECT_NE(metrics.body.find("hexa_plan_cache_hits"), std::string::npos);
  EXPECT_EQ(Handle(MakeRequest("GET", "/metrics.json")).status, 200);
}

// The same HTTP surface over the sharded facade: queries, publish-on-
// write freshness and the metrics export all route through
// ShardedHexastore (HEXA_SHARDS > 1 in the binary).
class ShardedServerHandleTest : public ::testing::Test {
 protected:
  static ShardedOptions FourShards() {
    ShardedOptions options;
    options.shards = 4;
    return options;
  }

  ShardedServerHandleTest()
      : store_(FourShards()), server_(store_, dict_, ServerOptions{}) {
    for (int i = 0; i < 8; ++i) {
      store_.Insert(dict_.Encode(
          Triple{Term::Iri("http://x/s" + std::to_string(i)),
                 Term::Iri("http://x/p"), Term::Iri("http://x/o")}));
    }
    store_.GetSnapshot();  // publish for wait-free sessions
    query::SessionOptions options;
    options.pin = query::PinPolicy::kWaitFree;
    session_ = std::make_unique<query::Session>(store_, dict_, options);
  }

  HttpResponse Handle(const HttpRequest& request) {
    return server_.Handle(request, session_.get());
  }

  Dictionary dict_;
  ShardedHexastore store_;
  Server server_;  // never Start()ed: routing only
  std::unique_ptr<query::Session> session_;
};

TEST_F(ShardedServerHandleTest, QueryAnswersAcrossShards) {
  // The 8 subjects hash across the 4 shards; an unbound-subject query
  // scatter-gathers and must return all of them.
  HttpResponse response = Handle(MakeRequest(
      "GET", "/query",
      {{"q", "SELECT ?s WHERE { ?s <http://x/p> ?o } ORDER BY ?s"}}));
  EXPECT_EQ(response.status, 200);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(response.body.find("http://x/s" + std::to_string(i)),
              std::string::npos)
        << "missing subject " << i;
  }
}

TEST_F(ShardedServerHandleTest, InsertThenQuerySeesTheWrite) {
  HttpResponse insert = Handle(MakeRequest(
      "POST", "/insert", {},
      "<http://x/new> <http://x/p> <http://x/o> .\n"));
  EXPECT_EQ(insert.status, 200);
  EXPECT_NE(insert.body.find("\"inserted\":1"), std::string::npos);
  // Publish-on-write reaches every shard's generation stream: the
  // wait-free sharded session must see the write immediately.
  HttpResponse query = Handle(MakeRequest(
      "GET", "/query", {{"q", "SELECT ?s WHERE { ?s <http://x/p> ?o }"}}));
  EXPECT_NE(query.body.find("http://x/new"), std::string::npos);
}

TEST_F(ShardedServerHandleTest, MetricsExposeShardFamilies) {
  HttpResponse metrics = Handle(MakeRequest("GET", "/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("hexa_shard_count 4"), std::string::npos);
  EXPECT_NE(metrics.body.find("hexa_shard_routed_writes_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("hexa_server_requests"), std::string::npos);
  EXPECT_EQ(Handle(MakeRequest("GET", "/metrics.json")).status, 200);
}

TEST_F(ShardedServerHandleTest, HealthzAnswersOk) {
  HttpResponse health = Handle(MakeRequest("GET", "/healthz"));
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("true"), std::string::npos);
}

TEST_F(ServerHandleTest, HealthzAnswersBooleanJson) {
  HttpResponse health = Handle(MakeRequest("GET", "/healthz"));
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "{\"head\":{},\"boolean\":true}");
}

TEST_F(ServerHandleTest, DeadlineOverrunIs504) {
  query::SessionOptions options;
  options.pin = query::PinPolicy::kWaitFree;
  options.deadline_ns = 1;
  query::Session hurried(store_, dict_, options);
  HttpResponse response = server_.Handle(
      MakeRequest("GET", "/query",
                  {{"q", "SELECT ?s WHERE { ?s <http://x/p> ?o }"}}),
      &hurried);
  EXPECT_EQ(response.status, 504);
}

// ---------------------------------------------------------------------
// Socket-level tests.

TEST(ServerSocketTest, EndToEndRoundTrips) {
  Dictionary dict;
  DeltaHexastore store;
  for (int i = 0; i < 16; ++i) {
    store.Insert(dict.Encode(
        Triple{Term::Iri("http://x/s" + std::to_string(i)),
               Term::Iri("http://x/p"), Term::Iri("http://x/o")}));
  }
  ServerOptions options;
  options.port = 0;
  options.threads = 2;
  Server server(store, dict, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  std::string body;
  EXPECT_EQ(client.Request("POST", "/query",
                           "SELECT ?s WHERE { ?s <http://x/p> ?o }", &body),
            200);
  EXPECT_NE(body.find("http://x/s0"), std::string::npos);

  // Keep-alive: same connection serves a second request.
  EXPECT_EQ(client.Request("GET", "/healthz", "", &body), 200);
  EXPECT_EQ(body, "{\"head\":{},\"boolean\":true}");

  // A write round trip through sockets.
  EXPECT_EQ(client.Request("POST", "/insert",
                           "<http://x/w> <http://x/p> <http://x/o> .\n",
                           &body),
            200);
  EXPECT_EQ(client.Request("POST", "/query",
                           "SELECT ?s WHERE { ?s <http://x/p> ?o }", &body),
            200);
  EXPECT_NE(body.find("http://x/w"), std::string::npos);

  EXPECT_EQ(client.Request("GET", "/nope", "", &body), 404);
  server.Stop();
}

TEST(ServerSocketTest, OversizedRequestIs413) {
  Dictionary dict;
  DeltaHexastore store;
  ServerOptions options;
  options.port = 0;
  options.max_request_bytes = 2048;
  Server server(store, dict, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  std::string body(8192, 'x');
  EXPECT_EQ(client.Request("POST", "/query", body, nullptr), 413);
  server.Stop();
}

TEST(ServerSocketTest, AdmissionControlShedsWith503) {
  Dictionary dict;
  DeltaHexastore store;
  // Enough data that one ORDER BY query occupies the single worker for
  // a measurable window.
  for (int i = 0; i < 20000; ++i) {
    store.Insert(dict.Encode(
        Triple{Term::Iri("http://x/s" + std::to_string(i)),
               Term::Iri("http://x/p" + std::to_string(i % 50)),
               Term::Iri("http://x/o" + std::to_string(i % 997))}));
  }
  ServerOptions options;
  options.port = 0;
  options.threads = 1;
  options.queue_depth = 1;
  Server server(store, dict, options);
  ASSERT_TRUE(server.Start().ok());

  const std::string slow_body =
      "SELECT ?s ?o WHERE { ?s ?p ?o } ORDER BY ?o LIMIT 19999";
  const std::string slow_query =
      "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: " +
      std::to_string(slow_body.size()) + "\r\n\r\n" + slow_body;

  bool saw_503 = false;
  bool busy_got_200 = false;
  for (int attempt = 0; attempt < 5 && !(saw_503 && busy_got_200);
       ++attempt) {
    // One connection pins the worker; a flood of others must overflow
    // the depth-1 queue and be shed at the door.
    std::vector<std::unique_ptr<TestClient>> flood;
    TestClient busy(server.port());
    ASSERT_TRUE(busy.SendRaw(slow_query));
    // Give the poller time to hand `busy` to the worker; otherwise the
    // flood can race it into the full queue and shed it too.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    for (int i = 0; i < 32; ++i) {
      flood.push_back(std::make_unique<TestClient>(server.port()));
      flood.back()->SendRaw(slow_query);
    }
    for (auto& client : flood) {
      int status = client->ReadResponse(nullptr);
      if (status == 503) {
        saw_503 = true;
      } else {
        EXPECT_TRUE(status == 200 || status == -1)
            << "unexpected status " << status;
      }
    }
    // The admitted connection must not be harmed by the shed: it
    // still gets its answer (within this attempt or a later one).
    if (busy.ReadResponse(nullptr) == 200) {
      busy_got_200 = true;
    }
  }
  EXPECT_TRUE(saw_503);
  EXPECT_TRUE(busy_got_200) << "the admitted slow query never answered 200";
  server.Stop();
}

// The TSan centerpiece: concurrent clients querying and writing over
// sockets while the store's background compactor folds generations
// underneath them. Every response must be well-formed and correct-ish
// (non-decreasing hot-predicate counts per client).
TEST(ServerSocketTest, ConcurrentClientsVsCompactorStress) {
  Dictionary dict;
  DeltaOptions delta;
  delta.compact_threshold = 64;     // merge constantly
  delta.background_compaction = true;
  delta.l0_run_limit = 2;
  DeltaHexastore store(delta);
  ServerOptions options;
  options.port = 0;
  options.threads = 4;
  Server server(store, dict, options);
  {
    IdTripleVec seed;
    for (int i = 0; i < 512; ++i) {
      seed.push_back(dict.Encode(
          Triple{Term::Iri("http://x/s" + std::to_string(i)),
                 Term::Iri("http://x/p" + std::to_string(i % 8)),
                 Term::Iri("http://x/o")}));
    }
    store.BulkLoad(seed);
  }
  ASSERT_TRUE(server.Start().ok());

  constexpr int kReaders = 4;
  constexpr int kRequestsPerReader = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      TestClient client(server.port());
      std::size_t last_rows = 0;
      for (int i = 0; i < kRequestsPerReader; ++i) {
        std::string body;
        std::string query =
            "SELECT ?s WHERE { ?s <http://x/hot" + std::to_string(t % 2) +
            "> ?o }";
        int status = client.Request("POST", "/query", query, &body);
        if (status != 200) {
          failures.fetch_add(1);
          continue;
        }
        std::size_t rows = 0;
        for (std::size_t pos = body.find("{\"s\":"); pos != std::string::npos;
             pos = body.find("{\"s\":", pos + 1)) {
          ++rows;
        }
        if (rows < last_rows) {
          failures.fetch_add(1);
        }
        last_rows = rows;
      }
    });
  }
  // Writer thread: HTTP inserts on the hot predicates, keeping the
  // compactor busy through the tiny threshold.
  threads.emplace_back([&] {
    TestClient client(server.port());
    for (int i = 0; i < 120; ++i) {
      std::string triples;
      for (int j = 0; j < 4; ++j) {
        triples += "<http://x/w" + std::to_string(i * 4 + j) +
                   "> <http://x/hot" + std::to_string(i % 2) +
                   "> <http://x/o> .\n";
      }
      if (client.Request("POST", "/insert", triples, nullptr) != 200) {
        failures.fetch_add(1);
      }
    }
  });
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(server.plan_cache().hits(), 0u);
  server.Stop();
}

}  // namespace
}  // namespace hexastore

// Unit and property tests for sorted id-vector operations, the building
// block of every Hexastore index.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "index/sorted_vec.h"
#include "util/rng.h"

namespace hexastore {
namespace {

TEST(SortedVecTest, InsertKeepsOrder) {
  IdVec v;
  EXPECT_TRUE(SortedInsert(&v, 5));
  EXPECT_TRUE(SortedInsert(&v, 1));
  EXPECT_TRUE(SortedInsert(&v, 3));
  EXPECT_EQ(v, (IdVec{1, 3, 5}));
}

TEST(SortedVecTest, InsertRejectsDuplicate) {
  IdVec v{1, 3};
  EXPECT_FALSE(SortedInsert(&v, 3));
  EXPECT_EQ(v, (IdVec{1, 3}));
}

TEST(SortedVecTest, EraseExistingAndMissing) {
  IdVec v{1, 2, 3};
  EXPECT_TRUE(SortedErase(&v, 2));
  EXPECT_EQ(v, (IdVec{1, 3}));
  EXPECT_FALSE(SortedErase(&v, 2));
  EXPECT_FALSE(SortedErase(&v, 99));
}

TEST(SortedVecTest, Contains) {
  IdVec v{2, 4, 6};
  EXPECT_TRUE(SortedContains(v, 4));
  EXPECT_FALSE(SortedContains(v, 5));
  EXPECT_FALSE(SortedContains({}, 1));
}

TEST(SortedVecTest, SortUnique) {
  IdVec v{5, 1, 5, 3, 1};
  SortUnique(&v);
  EXPECT_EQ(v, (IdVec{1, 3, 5}));
}

TEST(SortedVecTest, GallopLowerBound) {
  IdVec v{1, 3, 5, 7, 9, 11, 13};
  EXPECT_EQ(GallopLowerBound(v, 0, 5), 2u);
  EXPECT_EQ(GallopLowerBound(v, 0, 6), 3u);
  EXPECT_EQ(GallopLowerBound(v, 0, 0), 0u);
  EXPECT_EQ(GallopLowerBound(v, 0, 14), v.size());
  // Starting mid-way.
  EXPECT_EQ(GallopLowerBound(v, 3, 9), 4u);
  // Start already past the target: returns start.
  EXPECT_EQ(GallopLowerBound(v, 5, 3), 5u);
}

TEST(SortedVecTest, IntersectBasic) {
  EXPECT_EQ(Intersect({1, 2, 3}, {2, 3, 4}), (IdVec{2, 3}));
  EXPECT_EQ(Intersect({1, 2}, {3, 4}), IdVec{});
  EXPECT_EQ(Intersect({}, {1}), IdVec{});
}

TEST(SortedVecTest, UnionBasic) {
  EXPECT_EQ(Union({1, 3}, {2, 3, 4}), (IdVec{1, 2, 3, 4}));
  EXPECT_EQ(Union({}, {}), IdVec{});
}

TEST(SortedVecTest, DifferenceBasic) {
  EXPECT_EQ(Difference({1, 2, 3}, {2}), (IdVec{1, 3}));
  EXPECT_EQ(Difference({1}, {1}), IdVec{});
}

TEST(SortedVecTest, MergeJoinEmitsCommon) {
  IdVec seen;
  MergeJoin({1, 2, 5, 9}, {2, 3, 5, 10}, [&](Id id) { seen.push_back(id); });
  EXPECT_EQ(seen, (IdVec{2, 5}));
}

TEST(SortedVecTest, IsStrictlySorted) {
  EXPECT_TRUE(IsStrictlySorted({}));
  EXPECT_TRUE(IsStrictlySorted({1}));
  EXPECT_TRUE(IsStrictlySorted({1, 2, 9}));
  EXPECT_FALSE(IsStrictlySorted({1, 1}));
  EXPECT_FALSE(IsStrictlySorted({2, 1}));
}

// ---- Property tests (randomized, cross-checked against std::set) --------

class SortedVecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SortedVecPropertyTest, InsertEraseMatchesSet) {
  Rng rng(GetParam());
  IdVec vec;
  std::set<Id> ref;
  for (int i = 0; i < 2000; ++i) {
    Id id = 1 + rng.Uniform(200);
    if (rng.Bernoulli(0.6)) {
      EXPECT_EQ(SortedInsert(&vec, id), ref.insert(id).second);
    } else {
      EXPECT_EQ(SortedErase(&vec, id), ref.erase(id) > 0);
    }
    ASSERT_TRUE(IsStrictlySorted(vec));
  }
  EXPECT_EQ(vec, IdVec(ref.begin(), ref.end()));
}

TEST_P(SortedVecPropertyTest, SetAlgebraMatchesStd) {
  Rng rng(GetParam() ^ 0xabcdef);
  auto random_sorted = [&rng]() {
    IdVec v;
    const std::uint64_t n = rng.Uniform(100);
    for (std::uint64_t i = 0; i < n; ++i) {
      v.push_back(1 + rng.Uniform(150));
    }
    SortUnique(&v);
    return v;
  };
  for (int round = 0; round < 50; ++round) {
    IdVec a = random_sorted();
    IdVec b = random_sorted();

    IdVec expect_i;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expect_i));
    EXPECT_EQ(Intersect(a, b), expect_i);
    EXPECT_EQ(IntersectGalloping(a, b), expect_i);

    IdVec expect_u;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(expect_u));
    EXPECT_EQ(Union(a, b), expect_u);

    IdVec expect_d;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expect_d));
    EXPECT_EQ(Difference(a, b), expect_d);
  }
}

TEST_P(SortedVecPropertyTest, GallopAgreesWithLowerBound) {
  Rng rng(GetParam() ^ 0x123456);
  IdVec v;
  for (int i = 0; i < 500; ++i) {
    v.push_back(1 + rng.Uniform(5000));
  }
  SortUnique(&v);
  for (int i = 0; i < 500; ++i) {
    Id target = rng.Uniform(5200);
    std::size_t expect = static_cast<std::size_t>(
        std::lower_bound(v.begin(), v.end(), target) - v.begin());
    EXPECT_EQ(GallopLowerBound(v, 0, target), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortedVecPropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace hexastore

// Tests for the access counters and the workload-based index advisor
// (paper §6).
#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/hexastore.h"
#include "data/lubm_generator.h"
#include "dict/dictionary.h"
#include "workload/lubm_queries.h"

namespace hexastore {
namespace {

TEST(AccessCountersTest, StartAtZero) {
  Hexastore store;
  for (Permutation p : kAllPermutations) {
    EXPECT_EQ(store.access_count(p), 0u);
  }
}

TEST(AccessCountersTest, AccessorsAttributeToTheirIndex) {
  Hexastore store;
  store.Insert({1, 2, 3});
  store.ResetAccessCounts();  // Insert itself does not count

  store.predicates_of_subject(1);
  EXPECT_EQ(store.access_count(Permutation::kSpo), 1u);
  store.objects_of_subject(1);
  EXPECT_EQ(store.access_count(Permutation::kSop), 1u);
  store.subjects_of_predicate(2);
  EXPECT_EQ(store.access_count(Permutation::kPso), 1u);
  store.objects_of_predicate(2);
  EXPECT_EQ(store.access_count(Permutation::kPos), 1u);
  store.subjects_of_object(3);
  EXPECT_EQ(store.access_count(Permutation::kOsp), 1u);
  store.predicates_of_object(3);
  EXPECT_EQ(store.access_count(Permutation::kOps), 1u);
}

TEST(AccessCountersTest, TerminalLookupsAttributeToNaturalOrder) {
  Hexastore store;
  store.Insert({1, 2, 3});
  store.ResetAccessCounts();
  store.objects(1, 2);
  EXPECT_EQ(store.access_count(Permutation::kSpo), 1u);
  store.predicates(1, 3);
  EXPECT_EQ(store.access_count(Permutation::kSop), 1u);
  store.subjects(2, 3);
  EXPECT_EQ(store.access_count(Permutation::kPos), 1u);
}

TEST(AccessCountersTest, ResetClears) {
  Hexastore store;
  store.Insert({1, 2, 3});
  store.predicates_of_subject(1);
  store.ResetAccessCounts();
  for (Permutation p : kAllPermutations) {
    EXPECT_EQ(store.access_count(p), 0u);
  }
}

TEST(AdvisorTest, NoEvidenceNoRecommendation) {
  Hexastore store;
  store.Insert({1, 2, 3});
  IndexAdvice advice = AdviseIndexes(store);
  EXPECT_TRUE(advice.droppable.empty());
  EXPECT_EQ(advice.reclaimable_bytes, 0u);
  EXPECT_FALSE(advice.ToString().empty());
}

TEST(AdvisorTest, UnusedIndexesAreDroppable) {
  Hexastore store;
  for (Id i = 1; i <= 50; ++i) {
    store.Insert({i, 1 + i % 5, 100 + i});
  }
  store.ResetAccessCounts();
  // A pso/pos-only workload.
  for (int round = 0; round < 100; ++round) {
    store.subjects_of_predicate(1 + round % 5);
    store.objects_of_predicate(1 + round % 5);
  }
  IndexAdvice advice = AdviseIndexes(store, 0.01);
  // spo/sop/osp/ops unused -> droppable.
  EXPECT_EQ(advice.droppable.size(), 4u);
  EXPECT_GT(advice.reclaimable_bytes, 0u);
  for (Permutation p : advice.droppable) {
    EXPECT_NE(p, Permutation::kPso);
    EXPECT_NE(p, Permutation::kPos);
  }
  EXPECT_NEAR(advice.share[static_cast<int>(Permutation::kPso)], 0.5,
              1e-9);
}

TEST(AdvisorTest, SharesSumToOne) {
  Hexastore store;
  store.Insert({1, 2, 3});
  store.ResetAccessCounts();
  store.predicates_of_subject(1);
  store.subjects_of_object(3);
  store.objects_of_predicate(2);
  IndexAdvice advice = AdviseIndexes(store);
  double total = 0;
  for (double s : advice.share) {
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AdvisorTest, LubmWorkloadMirrorsPaperObservation) {
  // Run the five LUBM queries and check the advisor singles out barely
  // used indexes (the paper noted ops was seldom used in its workload).
  auto triples = data::LubmGenerator().Generate(20000);
  Dictionary dict;
  IdTripleVec encoded;
  for (const auto& t : triples) {
    encoded.push_back(dict.Encode(t));
  }
  Hexastore store;
  store.BulkLoad(encoded);
  workload::LubmIds ids = workload::LubmIds::Resolve(dict);
  store.ResetAccessCounts();

  workload::LubmRelatedToHexa(store, ids.course10);
  workload::LubmRelatedToHexa(store, ids.university0);
  workload::LubmQ3Hexa(store, ids.assoc_prof10);
  workload::LubmQ4Hexa(store, ids);
  workload::LubmQ5Hexa(store, ids);

  IndexAdvice advice = AdviseIndexes(store, 0.001);
  std::uint64_t total = 0;
  for (auto c : advice.counts) {
    total += c;
  }
  EXPECT_GT(total, 0u);
  // The osp-driven queries dominate this workload.
  EXPECT_GT(advice.counts[static_cast<int>(Permutation::kOsp)], 0u);
  EXPECT_FALSE(advice.ToString().empty());
}

}  // namespace
}  // namespace hexastore

// Tests for the Barton-like and LUBM-like dataset generators:
// determinism, prefix stability, and the structural properties the
// benchmark queries rely on.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "data/barton_generator.h"
#include "data/lubm_generator.h"

namespace hexastore::data {
namespace {

TEST(BartonGeneratorTest, ExactCountAndDeterminism) {
  BartonGenerator gen;
  auto a = gen.Generate(5000);
  auto b = gen.Generate(5000);
  EXPECT_EQ(a.size(), 5000u);
  EXPECT_EQ(a, b);
}

TEST(BartonGeneratorTest, PrefixStability) {
  BartonGenerator gen;
  auto small = gen.Generate(2000);
  auto large = gen.Generate(6000);
  ASSERT_GE(large.size(), small.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    ASSERT_EQ(small[i], large[i]) << "diverges at " << i;
  }
}

TEST(BartonGeneratorTest, DifferentSeedsDiffer) {
  BartonOptions opt_a;
  BartonOptions opt_b;
  opt_b.seed = 999;
  auto a = BartonGenerator(opt_a).Generate(1000);
  auto b = BartonGenerator(opt_b).Generate(1000);
  EXPECT_NE(a, b);
}

TEST(BartonGeneratorTest, PropertyUniverseIsBounded) {
  auto triples = BartonGenerator().Generate(30000);
  std::set<std::string> props;
  for (const auto& t : triples) {
    props.insert(t.predicate.value());
  }
  // 15 named + up to 270 generic.
  EXPECT_LE(props.size(), 285u);
  EXPECT_GT(props.size(), 30u);  // the tail should be visibly populated
}

TEST(BartonGeneratorTest, PropertyFrequenciesAreSkewed) {
  auto triples = BartonGenerator().Generate(30000);
  std::unordered_map<std::string, int> freq;
  for (const auto& t : triples) {
    ++freq[t.predicate.value()];
  }
  // The most frequent property should dominate the median property by a
  // wide margin (Zipf-like skew).
  int max_freq = 0;
  for (const auto& [p, f] : freq) {
    (void)p;
    max_freq = std::max(max_freq, f);
  }
  int rare = 0;
  for (const auto& [p, f] : freq) {
    (void)p;
    if (f < max_freq / 100) {
      ++rare;
    }
  }
  EXPECT_GT(rare, static_cast<int>(freq.size()) / 2)
      << "the vast majority of properties should appear infrequently";
}

TEST(BartonGeneratorTest, QueriesHaveSupport) {
  auto triples = BartonGenerator().Generate(50000);
  bool has_text = false;
  bool has_french_text_subject = false;
  bool has_dlc = false;
  bool has_records = false;
  bool has_point_end = false;
  std::unordered_set<std::string> text_subjects;
  for (const auto& t : triples) {
    if (t.predicate == BartonGenerator::PropType() &&
        t.object == BartonGenerator::TypeText()) {
      has_text = true;
      text_subjects.insert(t.subject.value());
    }
    if (t.predicate == BartonGenerator::PropOrigin() &&
        t.object == BartonGenerator::OriginDlc()) {
      has_dlc = true;
    }
    if (t.predicate == BartonGenerator::PropRecords()) {
      has_records = true;
    }
    if (t.predicate == BartonGenerator::PropPoint() &&
        t.object == BartonGenerator::PointEnd()) {
      has_point_end = true;
    }
  }
  for (const auto& t : triples) {
    if (t.predicate == BartonGenerator::PropLanguage() &&
        t.object == BartonGenerator::LangFrench() &&
        text_subjects.count(t.subject.value()) > 0) {
      has_french_text_subject = true;
    }
  }
  EXPECT_TRUE(has_text);
  EXPECT_TRUE(has_french_text_subject);
  EXPECT_TRUE(has_dlc);
  EXPECT_TRUE(has_records);
  EXPECT_TRUE(has_point_end);
}

TEST(BartonGeneratorTest, PreselectedPropertiesNumber28) {
  EXPECT_EQ(BartonGenerator::PreselectedProperties().size(), 28u);
}

TEST(LubmGeneratorTest, ExactCountAndDeterminism) {
  LubmGenerator gen;
  auto a = gen.Generate(5000);
  auto b = gen.Generate(5000);
  EXPECT_EQ(a.size(), 5000u);
  EXPECT_EQ(a, b);
}

TEST(LubmGeneratorTest, PrefixStability) {
  LubmGenerator gen;
  auto small = gen.Generate(3000);
  auto large = gen.Generate(9000);
  for (std::size_t i = 0; i < small.size(); ++i) {
    ASSERT_EQ(small[i], large[i]) << "diverges at " << i;
  }
}

TEST(LubmGeneratorTest, ExactlyEighteenPredicates) {
  EXPECT_EQ(LubmGenerator::AllPredicates().size(), 18u);
  auto triples = LubmGenerator().Generate(50000);
  std::set<std::string> preds;
  for (const auto& t : triples) {
    preds.insert(t.predicate.value());
  }
  std::set<std::string> declared;
  for (const auto& p : LubmGenerator::AllPredicates()) {
    declared.insert(p.value());
  }
  // Every observed predicate is declared; with 50k triples nearly all
  // declared predicates should be exercised.
  for (const auto& p : preds) {
    EXPECT_TRUE(declared.count(p) > 0) << p;
  }
  EXPECT_GE(preds.size(), 16u);
}

TEST(LubmGeneratorTest, QueryTargetsExist) {
  auto triples = LubmGenerator().Generate(60000);
  bool course10 = false;
  bool university0 = false;
  bool assoc_prof10 = false;
  const std::string course_uri =
      LubmGenerator::CourseUri(0, 0, 10).value();
  const std::string univ_uri = LubmGenerator::UniversityUri(0).value();
  const std::string prof_uri =
      LubmGenerator::AssociateProfessorUri(0, 0, 10).value();
  for (const auto& t : triples) {
    if (t.object.is_iri() && t.object.value() == course_uri) {
      course10 = true;
    }
    if (t.object.is_iri() && t.object.value() == univ_uri) {
      university0 = true;
    }
    if (t.subject.value() == prof_uri) {
      assoc_prof10 = true;
    }
  }
  EXPECT_TRUE(course10) << "LQ1 target must be referenced";
  EXPECT_TRUE(university0) << "LQ2 target must be referenced";
  EXPECT_TRUE(assoc_prof10) << "LQ3-5 target must have triples";
}

TEST(LubmGeneratorTest, GrowsBeyondConfiguredUniverse) {
  LubmOptions opts;
  opts.num_universities = 1;
  auto triples = LubmGenerator(opts).Generate(400000);
  EXPECT_EQ(triples.size(), 400000u);
}

TEST(LubmGeneratorTest, StructuralSanity) {
  auto triples = LubmGenerator().Generate(30000);
  // Every advisor edge points from a student to a faculty member that has
  // a type triple somewhere in the full data set; here we just check that
  // advisor objects are department-scoped URIs.
  int advisors = 0;
  for (const auto& t : triples) {
    if (t.predicate == LubmGenerator::PropAdvisor()) {
      ++advisors;
      EXPECT_TRUE(t.object.is_iri());
      EXPECT_NE(t.object.value().find("Department"), std::string::npos);
    }
  }
  EXPECT_GT(advisors, 0);
}

}  // namespace
}  // namespace hexastore::data

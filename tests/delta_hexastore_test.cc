// Behavior tests of the DeltaHexastore: staging semantics, threshold
// auto-compaction, snapshot isolation across compactions, merged accessor
// views and merge joins mid-delta, stats, and the snapshot file format.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/hexastore.h"
#include "delta/delta_hexastore.h"
#include "io/snapshot.h"
#include "query/merge_join.h"
#include "rdf/term.h"
#include "util/rng.h"

namespace hexastore {
namespace {

IdTripleVec MatchAll(const TripleStore& store) {
  return store.Match(IdPattern{});
}

TEST(DeltaHexastoreTest, InsertEraseContainsMirrorTripleStoreContract) {
  DeltaHexastore store;
  EXPECT_TRUE(store.Insert({1, 2, 3}));
  EXPECT_FALSE(store.Insert({1, 2, 3}));
  EXPECT_TRUE(store.Contains({1, 2, 3}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Erase({1, 2, 3}));
  EXPECT_FALSE(store.Erase({1, 2, 3}));
  EXPECT_FALSE(store.Contains({1, 2, 3}));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.name(), "DeltaHexastore");
}

TEST(DeltaHexastoreTest, WritesStageInDeltaUntilThreshold) {
  DeltaHexastore store(/*compact_threshold=*/8);
  for (Id i = 1; i <= 7; ++i) {
    store.Insert({i, 1, 1});
  }
  EXPECT_EQ(store.StagedOps(), 7u);
  EXPECT_EQ(store.CompactionCount(), 0u);
  EXPECT_EQ(store.base()->size(), 0u);  // nothing drained yet
  store.Insert({8, 1, 1});              // hits the threshold
  EXPECT_EQ(store.StagedOps(), 0u);
  EXPECT_EQ(store.CompactionCount(), 1u);
  EXPECT_EQ(store.base()->size(), 8u);
  EXPECT_EQ(store.size(), 8u);
}

TEST(DeltaHexastoreTest, EraseOfBaseTripleStagesTombstone) {
  DeltaHexastore store(/*compact_threshold=*/4);
  for (Id i = 1; i <= 4; ++i) {
    store.Insert({i, 1, 1});  // compacts on the 4th
  }
  ASSERT_EQ(store.CompactionCount(), 1u);
  EXPECT_TRUE(store.Erase({2, 1, 1}));
  EXPECT_EQ(store.StagedOps(), 1u);
  EXPECT_FALSE(store.Contains({2, 1, 1}));
  EXPECT_EQ(store.size(), 3u);
  // The tombstoned triple is still physically in the base.
  EXPECT_TRUE(store.base()->Contains({2, 1, 1}));
  store.Compact();
  EXPECT_FALSE(store.base()->Contains({2, 1, 1}));
  EXPECT_EQ(store.size(), 3u);
}

TEST(DeltaHexastoreTest, ScanSeesBaseMinusTombstonesPlusDelta) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.BulkLoad({{1, 1, 1}, {2, 1, 1}, {3, 1, 1}});
  store.Erase({2, 1, 1});   // tombstone over base
  store.Insert({4, 1, 1});  // staged insert
  const IdTripleVec expect{{1, 1, 1}, {3, 1, 1}, {4, 1, 1}};
  EXPECT_EQ(MatchAll(store), expect);
  // Pattern-restricted scans see the same merged view.
  EXPECT_EQ(store.CountMatches({0, 1, 1}), 3u);
  EXPECT_EQ(store.CountMatches({2, 0, 0}), 0u);
  EXPECT_EQ(store.CountMatches({4, 0, 0}), 1u);
}

TEST(DeltaHexastoreTest, AgreesWithHexastoreUnderRandomChurn) {
  Rng rng(0xde17a);
  DeltaHexastore store(/*compact_threshold=*/64);
  Hexastore oracle;
  for (int i = 0; i < 4000; ++i) {
    IdTriple t{1 + rng.Uniform(12), 1 + rng.Uniform(6),
               1 + rng.Uniform(12)};
    if (rng.Bernoulli(0.6)) {
      EXPECT_EQ(store.Insert(t), oracle.Insert(t));
    } else {
      EXPECT_EQ(store.Erase(t), oracle.Erase(t));
    }
  }
  EXPECT_EQ(store.size(), oracle.size());
  EXPECT_GT(store.CompactionCount(), 0u);
  for (int mask = 0; mask < 8; ++mask) {
    for (int probe = 0; probe < 20; ++probe) {
      IdPattern q;
      if (mask & 1) q.s = 1 + rng.Uniform(13);
      if (mask & 2) q.p = 1 + rng.Uniform(7);
      if (mask & 4) q.o = 1 + rng.Uniform(13);
      EXPECT_EQ(store.Match(q), oracle.Match(q));
    }
  }
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(DeltaHexastoreTest, SnapshotIsIsolatedFromLaterWritesAndCompaction) {
  DeltaHexastore store(/*compact_threshold=*/16);
  for (Id i = 1; i <= 10; ++i) {
    store.Insert({i, 1, 1});
  }
  DeltaHexastore::Snapshot snap = store.GetSnapshot();
  const IdTripleVec at_snapshot = snap.Match(IdPattern{});
  ASSERT_EQ(at_snapshot.size(), 10u);

  // Mutate past the threshold: compaction runs with the snapshot alive.
  for (Id i = 11; i <= 40; ++i) {
    store.Insert({i, 1, 1});
  }
  store.Erase({1, 1, 1});
  ASSERT_GT(store.CompactionCount(), 0u);

  // The snapshot still answers from the pre-compaction view.
  EXPECT_EQ(snap.Match(IdPattern{}), at_snapshot);
  EXPECT_EQ(snap.size(), 10u);
  EXPECT_TRUE(snap.Contains({1, 1, 1}));
  EXPECT_FALSE(snap.Contains({11, 1, 1}));
  // The live store sees the new state.
  EXPECT_EQ(store.size(), 39u);
  EXPECT_FALSE(store.Contains({1, 1, 1}));
}

TEST(DeltaHexastoreTest, SnapshotEpochAdvancesOnCompaction) {
  DeltaHexastore store(/*compact_threshold=*/4);
  DeltaHexastore::Snapshot before = store.GetSnapshot();
  for (Id i = 1; i <= 4; ++i) {
    store.Insert({i, 1, 1});
  }
  DeltaHexastore::Snapshot after = store.GetSnapshot();
  EXPECT_GT(after.epoch(), before.epoch());
}

TEST(DeltaHexastoreTest, ClearResetsEverythingIncludingStagedOps) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.BulkLoad({{1, 1, 1}, {2, 2, 2}});
  store.Insert({3, 3, 3});
  DeltaHexastore::Snapshot snap = store.GetSnapshot();
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.StagedOps(), 0u);
  EXPECT_EQ(MatchAll(store), IdTripleVec{});
  // The snapshot keeps the pre-clear view.
  EXPECT_EQ(snap.size(), 3u);
  EXPECT_TRUE(snap.Contains({3, 3, 3}));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(DeltaHexastoreTest, MergedTerminalListsSeeStagedEdits) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.BulkLoad({{1, 2, 3}, {1, 2, 5}, {1, 2, 7}});
  store.Erase({1, 2, 5});
  store.Insert({1, 2, 4});
  const IdVec expect{3, 4, 7};
  EXPECT_EQ(store.objects(1, 2).Materialize(), expect);
  EXPECT_EQ(store.objects(1, 2).size(), 3u);
  // Terminal lists in the other two families.
  EXPECT_EQ(store.predicates(1, 3).Materialize(), IdVec{2});
  EXPECT_EQ(store.subjects(2, 4).Materialize(), IdVec{1});
  EXPECT_EQ(store.subjects(2, 5).Materialize(), IdVec{});
}

TEST(DeltaHexastoreTest, MergedHeaderVectorsTrackPairLiveness) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.BulkLoad({{1, 2, 3}, {1, 4, 3}, {5, 2, 3}});
  // New subject header appears from a staged insert alone.
  store.Insert({6, 2, 9});
  // Erasing the only triple under (5, 2) must drop 5 from s(p=2).
  store.Erase({5, 2, 3});
  EXPECT_EQ(store.subjects_of_predicate(2), (IdVec{1, 6}));
  EXPECT_EQ(store.predicates_of_subject(1), (IdVec{2, 4}));
  EXPECT_EQ(store.predicates_of_subject(6), IdVec{2});
  EXPECT_EQ(store.objects_of_predicate(2), (IdVec{3, 9}));
  EXPECT_EQ(store.subjects_of_object(3), IdVec{1});
  EXPECT_EQ(store.predicates_of_object(9), IdVec{2});
  EXPECT_EQ(store.objects_of_subject(5), IdVec{});
  // A partial erase must NOT drop a header while sibling pairs survive:
  // (1,4,3) still links subject 1 and object 3 after (1,2,3) goes.
  store.Erase({1, 2, 3});
  EXPECT_EQ(store.subjects_of_object(3), IdVec{1});
  EXPECT_EQ(store.predicates_of_subject(1), IdVec{4});
  EXPECT_EQ(store.predicates_of_object(3), IdVec{4});
  EXPECT_EQ(store.subjects_of_predicate(2), IdVec{6});
}

TEST(DeltaHexastoreTest, MergedViewsStayValidAcrossCompaction) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.BulkLoad({{1, 2, 3}, {1, 2, 5}});
  store.Insert({1, 2, 4});
  const MergedList view = store.objects(1, 2);
  store.Compact();               // swaps in a rebuilt base (view pins old)
  store.Insert({1, 2, 9});       // mutates only the new generation
  const IdVec expect{3, 4, 5};
  EXPECT_EQ(view.Materialize(), expect);
  const IdVec live_expect{3, 4, 5, 9};
  EXPECT_EQ(store.objects(1, 2).Materialize(), live_expect);
}

// Every merge-join overload must agree with the same join on a plain
// Hexastore holding the compacted contents.
TEST(DeltaHexastoreTest, MergeJoinsAgreeWithCompactedHexastore) {
  Rng rng(77);
  DeltaHexastore store(/*compact_threshold=*/64);
  Hexastore compacted;
  for (int i = 0; i < 1200; ++i) {
    IdTriple t{1 + rng.Uniform(10), 1 + rng.Uniform(4),
               1 + rng.Uniform(10)};
    if (rng.Bernoulli(0.7)) {
      store.Insert(t);
      compacted.Insert(t);
    } else {
      store.Erase(t);
      compacted.Erase(t);
    }
  }
  ASSERT_EQ(MatchAll(store), MatchAll(compacted));
  for (int probe = 0; probe < 50; ++probe) {
    const Id p1 = 1 + rng.Uniform(5);
    const Id p2 = 1 + rng.Uniform(5);
    const Id o1 = 1 + rng.Uniform(11);
    const Id o2 = 1 + rng.Uniform(11);
    const Id s1 = 1 + rng.Uniform(11);
    const Id s2 = 1 + rng.Uniform(11);
    EXPECT_EQ(JoinSubjectsByObjects(store, p1, o1, p2, o2),
              JoinSubjectsByObjects(compacted, p1, o1, p2, o2));
    EXPECT_EQ(JoinObjectsBySubjects(store, s1, p1, s2, p2),
              JoinObjectsBySubjects(compacted, s1, p1, s2, p2));
    EXPECT_EQ(JoinSubjectsOfObjects(store, o1, o2),
              JoinSubjectsOfObjects(compacted, o1, o2));
    EXPECT_EQ(JoinPredicatesByPairs(store, s1, o1, s2, o2),
              JoinPredicatesByPairs(compacted, s1, o1, s2, o2));
    EXPECT_EQ(JoinChain(store, p1, p2), JoinChain(compacted, p1, p2));
  }
}

TEST(DeltaHexastoreTest, StatsReportDeltaAndBase) {
  DeltaHexastore store(/*compact_threshold=*/100);
  store.BulkLoad({{1, 1, 1}, {2, 2, 2}, {3, 3, 3}});
  store.Insert({4, 4, 4});
  store.Insert({5, 5, 5});
  store.Erase({1, 1, 1});
  const DeltaStats stats = store.Stats();
  EXPECT_EQ(stats.staged_inserts, 2u);
  EXPECT_EQ(stats.staged_tombstones, 1u);
  EXPECT_EQ(stats.compact_threshold, 100u);
  EXPECT_EQ(stats.base_triples, 3u);
  EXPECT_GT(stats.delta_bytes, 0u);
  EXPECT_GT(stats.base_bytes, 0u);
  const std::string report = stats.ToString();
  EXPECT_NE(report.find("2 inserts"), std::string::npos);
  EXPECT_NE(report.find("1 tombstones"), std::string::npos);
  EXPECT_GT(store.MemoryBytes(), 0u);
}

TEST(DeltaHexastoreTest, BulkLoadMergesIntoExistingContents) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.Insert({1, 1, 1});
  store.Insert({2, 2, 2});
  store.BulkLoad({{2, 2, 2}, {3, 3, 3}, {3, 3, 3}});
  const IdTripleVec expect{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}};
  EXPECT_EQ(MatchAll(store), expect);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.StagedOps(), 0u);  // BulkLoad drains the delta first
}

TEST(DeltaHexastoreTest, ErasePatternStagesOneTombstoneNotOnePerMatch) {
  DeltaHexastore store(/*compact_threshold=*/1u << 20);
  IdTripleVec triples;
  for (Id i = 1; i <= 100; ++i) {
    triples.push_back(IdTriple{i, 7, i + 1});
    triples.push_back(IdTriple{i, 8, i + 1});
  }
  std::sort(triples.begin(), triples.end());
  store.BulkLoad(triples);
  const std::size_t staged_before = store.StagedOps();

  EXPECT_EQ(store.ErasePattern(IdPattern{0, 7, 0}), 100u);
  // O(1) staging: no per-match point tombstones appeared.
  EXPECT_EQ(store.StagedOps(), staged_before);
  EXPECT_EQ(store.Stats().pattern_tombstones, 1u);
  EXPECT_EQ(store.size(), 100u);
  EXPECT_FALSE(store.Contains(IdTriple{1, 7, 2}));
  EXPECT_TRUE(store.Contains(IdTriple{1, 8, 2}));
  EXPECT_EQ(store.CountMatches(IdPattern{0, 7, 0}), 0u);
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;

  // Idempotent; a second erase of the same predicate removes nothing.
  EXPECT_EQ(store.ErasePattern(IdPattern{0, 7, 0}), 0u);

  // Re-insert after the pattern erase: only that triple resurfaces, and
  // compaction settles everything into the base.
  EXPECT_TRUE(store.Insert(IdTriple{1, 7, 2}));
  EXPECT_EQ(store.CountMatches(IdPattern{0, 7, 0}), 1u);
  store.Compact();
  EXPECT_EQ(store.Stats().pattern_tombstones, 0u);
  EXPECT_EQ(store.CountMatches(IdPattern{0, 7, 0}), 1u);
  EXPECT_EQ(store.size(), 101u);
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(DeltaHexastoreTest, ErasePatternSubsumesStagedOpsOnPredicate) {
  DeltaHexastore store(/*compact_threshold=*/1u << 20);
  store.BulkLoad({IdTriple{1, 5, 1}, IdTriple{2, 5, 2}, IdTriple{3, 6, 3}});
  EXPECT_TRUE(store.Insert(IdTriple{9, 5, 9}));  // staged insert, pred 5
  EXPECT_TRUE(store.Erase(IdTriple{1, 5, 1}));   // staged tombstone, pred 5
  // Logical matches of pred 5: (2,5,2) in base plus staged (9,5,9).
  EXPECT_EQ(store.ErasePattern(IdPattern{0, 5, 0}), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Contains(IdTriple{3, 6, 3}));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(DeltaHexastoreTest, SnapshotIsolatedFromErasePattern) {
  DeltaHexastore store(/*compact_threshold=*/1u << 20);
  store.BulkLoad({IdTriple{1, 2, 3}, IdTriple{4, 2, 5}, IdTriple{6, 7, 8}});
  DeltaHexastore::Snapshot snap = store.GetSnapshot();
  EXPECT_EQ(store.ErasePattern(IdPattern{0, 2, 0}), 2u);
  // The snapshot still sees the pre-erase world; the live store does not.
  EXPECT_TRUE(snap.Contains(IdTriple{1, 2, 3}));
  EXPECT_EQ(snap.Match(IdPattern{0, 2, 0}).size(), 2u);
  EXPECT_FALSE(store.Contains(IdTriple{1, 2, 3}));
  EXPECT_EQ(store.size(), 1u);
}

TEST(DeltaHexastoreSnapshotIoTest, RoundTripsAndCompactsFirst) {
  Dictionary dict;
  DeltaHexastore store(/*compact_threshold=*/1024);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    Term s = Term::Iri("http://ex/s" + std::to_string(rng.Uniform(40)));
    Term p = Term::Iri("http://ex/p" + std::to_string(rng.Uniform(8)));
    Term o = Term::Literal("v" + std::to_string(rng.Uniform(40)));
    store.Insert(IdTriple{dict.Intern(s), dict.Intern(p), dict.Intern(o)});
  }
  ASSERT_GT(store.StagedOps(), 0u);
  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(dict, &store, out).ok());
  EXPECT_EQ(store.StagedOps(), 0u);  // save compacted the delta

  Dictionary loaded_dict;
  DeltaHexastore loaded;
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadSnapshot(in, &loaded_dict, &loaded).ok());
  EXPECT_EQ(loaded.size(), store.size());
  EXPECT_EQ(MatchAll(loaded), MatchAll(store));
  EXPECT_EQ(loaded_dict.size(), dict.size());

  // Loading into a non-empty target is rejected.
  std::istringstream in2(out.str());
  EXPECT_FALSE(LoadSnapshot(in2, &loaded_dict, &loaded).ok());
}

TEST(DeltaHexastoreSnapshotIoTest, ByteIdenticalToGraphSnapshot) {
  // Build the same contents through a Graph and through a DeltaHexastore
  // sharing the Graph's dictionary; the two snapshots must match byte for
  // byte (compact-first keeps one on-disk format).
  Graph graph;
  std::vector<Triple> triples;
  for (int i = 0; i < 50; ++i) {
    triples.push_back(Triple{Term::Iri("http://ex/s" + std::to_string(i % 7)),
                             Term::Iri("http://ex/p" + std::to_string(i % 3)),
                             Term::Literal("v" + std::to_string(i))});
  }
  for (const Triple& t : triples) {
    graph.Insert(t);
  }
  DeltaHexastore store;
  for (const Triple& t : triples) {
    store.Insert(*graph.dict().TryEncode(t));
  }
  std::ostringstream graph_out;
  ASSERT_TRUE(SaveSnapshot(graph, graph_out).ok());
  std::ostringstream delta_out;
  ASSERT_TRUE(SaveSnapshot(graph.dict(), &store, delta_out).ok());
  EXPECT_EQ(graph_out.str(), delta_out.str());
}

// -- Leveled delta runs (docs/delta-levels.md) ----------------------------

DeltaOptions LeveledOptions(std::size_t threshold, std::size_t l0_limit,
                            double l1_fraction = 0.25) {
  DeltaOptions options;
  options.compact_threshold = threshold;
  options.l0_run_limit = l0_limit;
  options.l1_base_fraction = l1_fraction;
  return options;
}

TEST(LeveledDeltaTest, SealsAccumulateAsL0RunsAndFoldIntoL1) {
  DeltaHexastore store(LeveledOptions(4, 2));
  // Pre-populate so the L1→base trigger (a fraction of the base) stays
  // out of reach: 0.25 * 400 = 100 staged ops.
  IdTripleVec bulk;
  for (Id i = 1; i <= 400; ++i) {
    bulk.push_back({i, 7, i});
  }
  store.BulkLoad(bulk);
  ASSERT_TRUE(store.leveled());

  // First threshold hit: the buffer seals into one L0 run — no merge.
  for (Id i = 1; i <= 4; ++i) {
    store.Insert({1000 + i, 8, i});
  }
  DeltaStats stats = store.Stats();
  EXPECT_EQ(stats.l0_runs, 1u);
  EXPECT_EQ(stats.l1_ops, 0u);
  EXPECT_EQ(stats.l0_merges, 0u);
  EXPECT_EQ(store.StagedOps(), 4u);  // staged in the run, not drained

  // Second seal reaches l0_run_limit: the runs fold into a single L1
  // run; the base is still untouched.
  for (Id i = 5; i <= 8; ++i) {
    store.Insert({1000 + i, 8, i});
  }
  stats = store.Stats();
  EXPECT_EQ(stats.l0_runs, 0u);
  EXPECT_EQ(stats.l1_ops, 8u);
  EXPECT_EQ(stats.l0_merges, 1u);
  EXPECT_EQ(stats.base_merges, 0u);
  EXPECT_EQ(stats.base_triples, 400u);
  EXPECT_EQ(store.size(), 408u);

  // Reads see the whole chain: active ▷ L0 ▷ L1 ▷ base.
  EXPECT_TRUE(store.Contains({1001, 8, 1}));
  EXPECT_TRUE(store.Contains({1, 7, 1}));
  EXPECT_EQ(store.CountMatches(IdPattern{0, 8, 0}), 8u);
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;

  // An explicit Compact collapses the full hierarchy into the base.
  store.Compact();
  EXPECT_EQ(store.StagedOps(), 0u);
  EXPECT_EQ(store.base()->size(), 408u);
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(LeveledDeltaTest, L1MergesIntoBaseOnlyWhenItEarnsIt) {
  // Tiny base: the fraction trigger collapses to the threshold, so the
  // first fold is immediately followed by an L1→base merge.
  DeltaHexastore store(LeveledOptions(4, 2));
  for (Id i = 1; i <= 8; ++i) {
    store.Insert({i, 3, i});
  }
  DeltaStats stats = store.Stats();
  EXPECT_EQ(stats.l0_merges, 1u);
  EXPECT_EQ(stats.base_merges, 1u);
  EXPECT_EQ(stats.l0_runs, 0u);
  EXPECT_EQ(stats.l1_ops, 0u);
  EXPECT_EQ(stats.base_triples, 8u);
  EXPECT_EQ(store.size(), 8u);
  EXPECT_GT(stats.staged_ops_total, 0u);
  EXPECT_GT(stats.WriteAmplification(), 0.0);
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(LeveledDeltaTest, TombstonesInRunsEraseBaseAndLowerRuns) {
  DeltaHexastore store(LeveledOptions(4, 2));
  IdTripleVec bulk;
  for (Id i = 1; i <= 400; ++i) {
    bulk.push_back({i, 7, i});
  }
  store.BulkLoad(bulk);
  // Two seals: one run of inserts, one run erasing base triples plus one
  // of the first run's inserts — the fold must annihilate that pair.
  for (Id i = 1; i <= 4; ++i) {
    store.Insert({1000 + i, 8, i});
  }
  EXPECT_TRUE(store.Erase({1000 + 1, 8, 1}));  // insert in the run below
  EXPECT_TRUE(store.Erase({1, 7, 1}));         // base-resident
  EXPECT_TRUE(store.Erase({2, 7, 2}));
  EXPECT_TRUE(store.Insert({3000, 9, 9}));  // 4th op seals and folds
  DeltaStats stats = store.Stats();
  EXPECT_EQ(stats.l0_merges, 1u);
  // 4 inserts + 4 ops, minus the annihilated insert/tombstone pair.
  EXPECT_EQ(stats.l1_ops, 6u);
  EXPECT_FALSE(store.Contains({1000 + 1, 8, 1}));
  EXPECT_FALSE(store.Contains({1, 7, 1}));
  EXPECT_TRUE(store.Contains({1000 + 2, 8, 2}));
  EXPECT_EQ(store.size(), 400u + 4 + 1 - 3);
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
  store.Compact();
  EXPECT_EQ(store.base()->size(), 402u);
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

// Regression: an ErasePattern tombstone staged above matching triples
// that sit in lower levels (an L0 run above L1) must suppress them in
// every read path, survive the L0→L1 fold, and let later re-inserts
// show through.
TEST(LeveledDeltaTest, PatternTombstoneInL0SuppressesMatchesInL1) {
  DeltaHexastore store(LeveledOptions(4, 2));
  IdTripleVec bulk;
  for (Id i = 1; i <= 400; ++i) {
    bulk.push_back({i, 7, i});
  }
  store.BulkLoad(bulk);

  // Land 8 pred-5 triples in L1 (two seals, one fold).
  for (Id i = 1; i <= 8; ++i) {
    store.Insert({1000 + i, 5, i});
  }
  ASSERT_EQ(store.Stats().l1_ops, 8u);
  ASSERT_EQ(store.Stats().l0_runs, 0u);

  // The leveled fast path counts by one merged scan — no level drains.
  EXPECT_EQ(store.ErasePattern(IdPattern{0, 5, 0}), 8u);
  EXPECT_EQ(store.size(), 400u);
  ASSERT_EQ(store.Stats().l1_ops, 8u);  // suppressed, not yet purged

  // Seal the pattern tombstone into an L0 run above L1.
  for (Id i = 1; i <= 4; ++i) {
    store.Insert({2000 + i, 9, i});  // 4th op seals
  }
  DeltaStats stats = store.Stats();
  ASSERT_EQ(stats.l0_runs, 1u);
  ASSERT_EQ(stats.l1_ops, 8u);

  // Verdict chain: the L0 run's pattern wins over the L1 inserts below.
  EXPECT_FALSE(store.Contains({1001, 5, 1}));
  EXPECT_EQ(store.CountMatches(IdPattern{0, 5, 0}), 0u);
  EXPECT_EQ(store.EstimateMatches(IdPattern{0, 5, 0}), 0u);
  EXPECT_TRUE(store.subjects_of_predicate(5).empty());
  EXPECT_TRUE(store.objects(1001, 5).empty());
  EXPECT_EQ(store.size(), 404u);
  std::string err;
  ASSERT_TRUE(store.CheckInvariants(&err)) << err;

  // A re-insert above the pattern is visible again.
  EXPECT_TRUE(store.Insert({1001, 5, 1}));
  EXPECT_TRUE(store.Contains({1001, 5, 1}));
  EXPECT_EQ(store.CountMatches(IdPattern{0, 5, 0}), 1u);

  // Fold the pattern run onto L1: the suppressed inserts die there, the
  // pattern and the re-insert survive.
  for (Id i = 1; i <= 3; ++i) {
    store.Insert({3000 + i, 9, 100 + i});  // 4th op with the re-insert
  }
  stats = store.Stats();
  ASSERT_EQ(stats.l0_merges, 2u);
  ASSERT_EQ(stats.l0_runs, 0u);
  EXPECT_TRUE(store.Contains({1001, 5, 1}));
  EXPECT_EQ(store.CountMatches(IdPattern{0, 5, 0}), 1u);
  EXPECT_EQ(store.size(), 408u);
  ASSERT_TRUE(store.CheckInvariants(&err)) << err;

  // Full drain: the physical purge agrees with the logical view.
  store.Compact();
  EXPECT_EQ(store.base()->size(), 408u);
  EXPECT_TRUE(store.Contains({1001, 5, 1}));
  EXPECT_EQ(store.CountMatches(IdPattern{0, 5, 0}), 1u);
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

// Regression: BulkLoad's wait-for-merge sets the compactor's full-depth
// drain request; once the hierarchy is empty the flag must clear, or
// the next routine seal is folded and base-merged immediately instead
// of accumulating l0_run_limit runs.
TEST(LeveledDeltaTest, BulkLoadDoesNotLeaveStaleDrainRequest) {
  DeltaOptions options;
  options.compact_threshold = 4;
  options.background_compaction = true;
  options.l0_run_limit = 4;
  DeltaHexastore store(options);
  IdTripleVec bulk;
  for (Id i = 1; i <= 100; ++i) {
    bulk.push_back({i, 7, i});
  }
  store.BulkLoad(bulk);  // sets, then must clear, the drain request
  for (Id i = 1; i <= 4; ++i) {
    store.Insert({1000 + i, 8, i});  // one seal
  }
  // Give a (buggy) compactor ample time to act on a stale request.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const DeltaStats stats = store.Stats();
  EXPECT_EQ(stats.l0_runs, 1u);  // the run awaits l0_run_limit peers
  EXPECT_EQ(stats.l0_merges, 0u);
  EXPECT_EQ(stats.base_merges, 0u);
  EXPECT_EQ(stats.base_triples, 100u);
}

TEST(LeveledDeltaTest, SnapshotsPinTheLeveledChain) {
  DeltaHexastore store(LeveledOptions(4, 2));
  IdTripleVec bulk;
  for (Id i = 1; i <= 400; ++i) {
    bulk.push_back({i, 7, i});
  }
  store.BulkLoad(bulk);
  for (Id i = 1; i <= 6; ++i) {
    store.Insert({1000 + i, 8, i});  // one fold + a half-full buffer
  }
  const DeltaHexastore::Snapshot snap = store.GetSnapshot();
  const IdTripleVec before = MatchAll(snap);
  ASSERT_EQ(before.size(), 406u);

  // Churn through more seals, folds and a full drain.
  for (Id i = 7; i <= 40; ++i) {
    store.Insert({1000 + i, 8, i});
  }
  store.ErasePattern(IdPattern{0, 8, 0});
  store.Compact();
  EXPECT_EQ(store.size(), 400u);

  // The pinned handle still answers from its generation.
  EXPECT_EQ(MatchAll(snap), before);
  EXPECT_EQ(snap.size(), 406u);
  EXPECT_TRUE(snap.Contains({1001, 8, 1}));
  EXPECT_EQ(snap.CountMatches(IdPattern{0, 8, 0}), 6u);
}

TEST(DeltaOptionsTest, NormalizeRepairsBadL1BaseFraction) {
  // Zero, negative, NaN and infinity used to silently degrade the
  // leveled store into always-base-merging; Normalize now clamps each
  // to the default and says so.
  const double bad[] = {0.0, -0.5, std::nan(""),
                        std::numeric_limits<double>::infinity()};
  for (const double value : bad) {
    DeltaOptions o;
    o.l1_base_fraction = value;
    const std::string message = o.Normalize();
    EXPECT_FALSE(message.empty()) << "value " << value;
    EXPECT_EQ(o.l1_base_fraction, 0.25) << "value " << value;
    // A repaired options struct is clean on re-normalization.
    EXPECT_TRUE(o.Normalize().empty()) << "value " << value;
  }
  // Valid fractions pass through untouched.
  DeltaOptions ok;
  ok.l1_base_fraction = 0.7;
  EXPECT_TRUE(ok.Normalize().empty());
  EXPECT_EQ(ok.l1_base_fraction, 0.7);
}

TEST(DeltaOptionsTest, StoreRepairsBadOptionsOnConstruction) {
  DeltaOptions o;
  o.compact_threshold = 0;  // would seal on every op
  o.l1_base_fraction = -1.0;
  o.l0_run_limit = 2;
  DeltaHexastore store(o);
  EXPECT_EQ(store.l1_base_fraction(), 0.25);
  // The repaired store still behaves: a leveled churn round-trips.
  for (Id i = 1; i <= 20; ++i) {
    ASSERT_TRUE(store.Insert({i, 1 + i % 3, i}));
  }
  EXPECT_EQ(store.size(), 20u);
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

}  // namespace
}  // namespace hexastore

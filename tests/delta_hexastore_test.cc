// Behavior tests of the DeltaHexastore: staging semantics, threshold
// auto-compaction, snapshot isolation across compactions, merged accessor
// views and merge joins mid-delta, stats, and the snapshot file format.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/hexastore.h"
#include "delta/delta_hexastore.h"
#include "io/snapshot.h"
#include "query/merge_join.h"
#include "rdf/term.h"
#include "util/rng.h"

namespace hexastore {
namespace {

IdTripleVec MatchAll(const TripleStore& store) {
  return store.Match(IdPattern{});
}

TEST(DeltaHexastoreTest, InsertEraseContainsMirrorTripleStoreContract) {
  DeltaHexastore store;
  EXPECT_TRUE(store.Insert({1, 2, 3}));
  EXPECT_FALSE(store.Insert({1, 2, 3}));
  EXPECT_TRUE(store.Contains({1, 2, 3}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Erase({1, 2, 3}));
  EXPECT_FALSE(store.Erase({1, 2, 3}));
  EXPECT_FALSE(store.Contains({1, 2, 3}));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.name(), "DeltaHexastore");
}

TEST(DeltaHexastoreTest, WritesStageInDeltaUntilThreshold) {
  DeltaHexastore store(/*compact_threshold=*/8);
  for (Id i = 1; i <= 7; ++i) {
    store.Insert({i, 1, 1});
  }
  EXPECT_EQ(store.StagedOps(), 7u);
  EXPECT_EQ(store.CompactionCount(), 0u);
  EXPECT_EQ(store.base()->size(), 0u);  // nothing drained yet
  store.Insert({8, 1, 1});              // hits the threshold
  EXPECT_EQ(store.StagedOps(), 0u);
  EXPECT_EQ(store.CompactionCount(), 1u);
  EXPECT_EQ(store.base()->size(), 8u);
  EXPECT_EQ(store.size(), 8u);
}

TEST(DeltaHexastoreTest, EraseOfBaseTripleStagesTombstone) {
  DeltaHexastore store(/*compact_threshold=*/4);
  for (Id i = 1; i <= 4; ++i) {
    store.Insert({i, 1, 1});  // compacts on the 4th
  }
  ASSERT_EQ(store.CompactionCount(), 1u);
  EXPECT_TRUE(store.Erase({2, 1, 1}));
  EXPECT_EQ(store.StagedOps(), 1u);
  EXPECT_FALSE(store.Contains({2, 1, 1}));
  EXPECT_EQ(store.size(), 3u);
  // The tombstoned triple is still physically in the base.
  EXPECT_TRUE(store.base()->Contains({2, 1, 1}));
  store.Compact();
  EXPECT_FALSE(store.base()->Contains({2, 1, 1}));
  EXPECT_EQ(store.size(), 3u);
}

TEST(DeltaHexastoreTest, ScanSeesBaseMinusTombstonesPlusDelta) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.BulkLoad({{1, 1, 1}, {2, 1, 1}, {3, 1, 1}});
  store.Erase({2, 1, 1});   // tombstone over base
  store.Insert({4, 1, 1});  // staged insert
  const IdTripleVec expect{{1, 1, 1}, {3, 1, 1}, {4, 1, 1}};
  EXPECT_EQ(MatchAll(store), expect);
  // Pattern-restricted scans see the same merged view.
  EXPECT_EQ(store.CountMatches({0, 1, 1}), 3u);
  EXPECT_EQ(store.CountMatches({2, 0, 0}), 0u);
  EXPECT_EQ(store.CountMatches({4, 0, 0}), 1u);
}

TEST(DeltaHexastoreTest, AgreesWithHexastoreUnderRandomChurn) {
  Rng rng(0xde17a);
  DeltaHexastore store(/*compact_threshold=*/64);
  Hexastore oracle;
  for (int i = 0; i < 4000; ++i) {
    IdTriple t{1 + rng.Uniform(12), 1 + rng.Uniform(6),
               1 + rng.Uniform(12)};
    if (rng.Bernoulli(0.6)) {
      EXPECT_EQ(store.Insert(t), oracle.Insert(t));
    } else {
      EXPECT_EQ(store.Erase(t), oracle.Erase(t));
    }
  }
  EXPECT_EQ(store.size(), oracle.size());
  EXPECT_GT(store.CompactionCount(), 0u);
  for (int mask = 0; mask < 8; ++mask) {
    for (int probe = 0; probe < 20; ++probe) {
      IdPattern q;
      if (mask & 1) q.s = 1 + rng.Uniform(13);
      if (mask & 2) q.p = 1 + rng.Uniform(7);
      if (mask & 4) q.o = 1 + rng.Uniform(13);
      EXPECT_EQ(store.Match(q), oracle.Match(q));
    }
  }
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(DeltaHexastoreTest, SnapshotIsIsolatedFromLaterWritesAndCompaction) {
  DeltaHexastore store(/*compact_threshold=*/16);
  for (Id i = 1; i <= 10; ++i) {
    store.Insert({i, 1, 1});
  }
  DeltaHexastore::Snapshot snap = store.GetSnapshot();
  const IdTripleVec at_snapshot = snap.Match(IdPattern{});
  ASSERT_EQ(at_snapshot.size(), 10u);

  // Mutate past the threshold: compaction runs with the snapshot alive.
  for (Id i = 11; i <= 40; ++i) {
    store.Insert({i, 1, 1});
  }
  store.Erase({1, 1, 1});
  ASSERT_GT(store.CompactionCount(), 0u);

  // The snapshot still answers from the pre-compaction view.
  EXPECT_EQ(snap.Match(IdPattern{}), at_snapshot);
  EXPECT_EQ(snap.size(), 10u);
  EXPECT_TRUE(snap.Contains({1, 1, 1}));
  EXPECT_FALSE(snap.Contains({11, 1, 1}));
  // The live store sees the new state.
  EXPECT_EQ(store.size(), 39u);
  EXPECT_FALSE(store.Contains({1, 1, 1}));
}

TEST(DeltaHexastoreTest, SnapshotEpochAdvancesOnCompaction) {
  DeltaHexastore store(/*compact_threshold=*/4);
  DeltaHexastore::Snapshot before = store.GetSnapshot();
  for (Id i = 1; i <= 4; ++i) {
    store.Insert({i, 1, 1});
  }
  DeltaHexastore::Snapshot after = store.GetSnapshot();
  EXPECT_GT(after.epoch(), before.epoch());
}

TEST(DeltaHexastoreTest, ClearResetsEverythingIncludingStagedOps) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.BulkLoad({{1, 1, 1}, {2, 2, 2}});
  store.Insert({3, 3, 3});
  DeltaHexastore::Snapshot snap = store.GetSnapshot();
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.StagedOps(), 0u);
  EXPECT_EQ(MatchAll(store), IdTripleVec{});
  // The snapshot keeps the pre-clear view.
  EXPECT_EQ(snap.size(), 3u);
  EXPECT_TRUE(snap.Contains({3, 3, 3}));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(DeltaHexastoreTest, MergedTerminalListsSeeStagedEdits) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.BulkLoad({{1, 2, 3}, {1, 2, 5}, {1, 2, 7}});
  store.Erase({1, 2, 5});
  store.Insert({1, 2, 4});
  const IdVec expect{3, 4, 7};
  EXPECT_EQ(store.objects(1, 2).Materialize(), expect);
  EXPECT_EQ(store.objects(1, 2).size(), 3u);
  // Terminal lists in the other two families.
  EXPECT_EQ(store.predicates(1, 3).Materialize(), IdVec{2});
  EXPECT_EQ(store.subjects(2, 4).Materialize(), IdVec{1});
  EXPECT_EQ(store.subjects(2, 5).Materialize(), IdVec{});
}

TEST(DeltaHexastoreTest, MergedHeaderVectorsTrackPairLiveness) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.BulkLoad({{1, 2, 3}, {1, 4, 3}, {5, 2, 3}});
  // New subject header appears from a staged insert alone.
  store.Insert({6, 2, 9});
  // Erasing the only triple under (5, 2) must drop 5 from s(p=2).
  store.Erase({5, 2, 3});
  EXPECT_EQ(store.subjects_of_predicate(2), (IdVec{1, 6}));
  EXPECT_EQ(store.predicates_of_subject(1), (IdVec{2, 4}));
  EXPECT_EQ(store.predicates_of_subject(6), IdVec{2});
  EXPECT_EQ(store.objects_of_predicate(2), (IdVec{3, 9}));
  EXPECT_EQ(store.subjects_of_object(3), IdVec{1});
  EXPECT_EQ(store.predicates_of_object(9), IdVec{2});
  EXPECT_EQ(store.objects_of_subject(5), IdVec{});
  // A partial erase must NOT drop a header while sibling pairs survive:
  // (1,4,3) still links subject 1 and object 3 after (1,2,3) goes.
  store.Erase({1, 2, 3});
  EXPECT_EQ(store.subjects_of_object(3), IdVec{1});
  EXPECT_EQ(store.predicates_of_subject(1), IdVec{4});
  EXPECT_EQ(store.predicates_of_object(3), IdVec{4});
  EXPECT_EQ(store.subjects_of_predicate(2), IdVec{6});
}

TEST(DeltaHexastoreTest, MergedViewsStayValidAcrossCompaction) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.BulkLoad({{1, 2, 3}, {1, 2, 5}});
  store.Insert({1, 2, 4});
  const MergedList view = store.objects(1, 2);
  store.Compact();               // swaps in a rebuilt base (view pins old)
  store.Insert({1, 2, 9});       // mutates only the new generation
  const IdVec expect{3, 4, 5};
  EXPECT_EQ(view.Materialize(), expect);
  const IdVec live_expect{3, 4, 5, 9};
  EXPECT_EQ(store.objects(1, 2).Materialize(), live_expect);
}

// Every merge-join overload must agree with the same join on a plain
// Hexastore holding the compacted contents.
TEST(DeltaHexastoreTest, MergeJoinsAgreeWithCompactedHexastore) {
  Rng rng(77);
  DeltaHexastore store(/*compact_threshold=*/64);
  Hexastore compacted;
  for (int i = 0; i < 1200; ++i) {
    IdTriple t{1 + rng.Uniform(10), 1 + rng.Uniform(4),
               1 + rng.Uniform(10)};
    if (rng.Bernoulli(0.7)) {
      store.Insert(t);
      compacted.Insert(t);
    } else {
      store.Erase(t);
      compacted.Erase(t);
    }
  }
  ASSERT_EQ(MatchAll(store), MatchAll(compacted));
  for (int probe = 0; probe < 50; ++probe) {
    const Id p1 = 1 + rng.Uniform(5);
    const Id p2 = 1 + rng.Uniform(5);
    const Id o1 = 1 + rng.Uniform(11);
    const Id o2 = 1 + rng.Uniform(11);
    const Id s1 = 1 + rng.Uniform(11);
    const Id s2 = 1 + rng.Uniform(11);
    EXPECT_EQ(JoinSubjectsByObjects(store, p1, o1, p2, o2),
              JoinSubjectsByObjects(compacted, p1, o1, p2, o2));
    EXPECT_EQ(JoinObjectsBySubjects(store, s1, p1, s2, p2),
              JoinObjectsBySubjects(compacted, s1, p1, s2, p2));
    EXPECT_EQ(JoinSubjectsOfObjects(store, o1, o2),
              JoinSubjectsOfObjects(compacted, o1, o2));
    EXPECT_EQ(JoinPredicatesByPairs(store, s1, o1, s2, o2),
              JoinPredicatesByPairs(compacted, s1, o1, s2, o2));
    EXPECT_EQ(JoinChain(store, p1, p2), JoinChain(compacted, p1, p2));
  }
}

TEST(DeltaHexastoreTest, StatsReportDeltaAndBase) {
  DeltaHexastore store(/*compact_threshold=*/100);
  store.BulkLoad({{1, 1, 1}, {2, 2, 2}, {3, 3, 3}});
  store.Insert({4, 4, 4});
  store.Insert({5, 5, 5});
  store.Erase({1, 1, 1});
  const DeltaStats stats = store.Stats();
  EXPECT_EQ(stats.staged_inserts, 2u);
  EXPECT_EQ(stats.staged_tombstones, 1u);
  EXPECT_EQ(stats.compact_threshold, 100u);
  EXPECT_EQ(stats.base_triples, 3u);
  EXPECT_GT(stats.delta_bytes, 0u);
  EXPECT_GT(stats.base_bytes, 0u);
  const std::string report = stats.ToString();
  EXPECT_NE(report.find("2 inserts"), std::string::npos);
  EXPECT_NE(report.find("1 tombstones"), std::string::npos);
  EXPECT_GT(store.MemoryBytes(), 0u);
}

TEST(DeltaHexastoreTest, BulkLoadMergesIntoExistingContents) {
  DeltaHexastore store(/*compact_threshold=*/1024);
  store.Insert({1, 1, 1});
  store.Insert({2, 2, 2});
  store.BulkLoad({{2, 2, 2}, {3, 3, 3}, {3, 3, 3}});
  const IdTripleVec expect{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}};
  EXPECT_EQ(MatchAll(store), expect);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.StagedOps(), 0u);  // BulkLoad drains the delta first
}

TEST(DeltaHexastoreTest, ErasePatternStagesOneTombstoneNotOnePerMatch) {
  DeltaHexastore store(/*compact_threshold=*/1u << 20);
  IdTripleVec triples;
  for (Id i = 1; i <= 100; ++i) {
    triples.push_back(IdTriple{i, 7, i + 1});
    triples.push_back(IdTriple{i, 8, i + 1});
  }
  std::sort(triples.begin(), triples.end());
  store.BulkLoad(triples);
  const std::size_t staged_before = store.StagedOps();

  EXPECT_EQ(store.ErasePattern(IdPattern{0, 7, 0}), 100u);
  // O(1) staging: no per-match point tombstones appeared.
  EXPECT_EQ(store.StagedOps(), staged_before);
  EXPECT_EQ(store.Stats().pattern_tombstones, 1u);
  EXPECT_EQ(store.size(), 100u);
  EXPECT_FALSE(store.Contains(IdTriple{1, 7, 2}));
  EXPECT_TRUE(store.Contains(IdTriple{1, 8, 2}));
  EXPECT_EQ(store.CountMatches(IdPattern{0, 7, 0}), 0u);
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;

  // Idempotent; a second erase of the same predicate removes nothing.
  EXPECT_EQ(store.ErasePattern(IdPattern{0, 7, 0}), 0u);

  // Re-insert after the pattern erase: only that triple resurfaces, and
  // compaction settles everything into the base.
  EXPECT_TRUE(store.Insert(IdTriple{1, 7, 2}));
  EXPECT_EQ(store.CountMatches(IdPattern{0, 7, 0}), 1u);
  store.Compact();
  EXPECT_EQ(store.Stats().pattern_tombstones, 0u);
  EXPECT_EQ(store.CountMatches(IdPattern{0, 7, 0}), 1u);
  EXPECT_EQ(store.size(), 101u);
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(DeltaHexastoreTest, ErasePatternSubsumesStagedOpsOnPredicate) {
  DeltaHexastore store(/*compact_threshold=*/1u << 20);
  store.BulkLoad({IdTriple{1, 5, 1}, IdTriple{2, 5, 2}, IdTriple{3, 6, 3}});
  EXPECT_TRUE(store.Insert(IdTriple{9, 5, 9}));  // staged insert, pred 5
  EXPECT_TRUE(store.Erase(IdTriple{1, 5, 1}));   // staged tombstone, pred 5
  // Logical matches of pred 5: (2,5,2) in base plus staged (9,5,9).
  EXPECT_EQ(store.ErasePattern(IdPattern{0, 5, 0}), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Contains(IdTriple{3, 6, 3}));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(DeltaHexastoreTest, SnapshotIsolatedFromErasePattern) {
  DeltaHexastore store(/*compact_threshold=*/1u << 20);
  store.BulkLoad({IdTriple{1, 2, 3}, IdTriple{4, 2, 5}, IdTriple{6, 7, 8}});
  DeltaHexastore::Snapshot snap = store.GetSnapshot();
  EXPECT_EQ(store.ErasePattern(IdPattern{0, 2, 0}), 2u);
  // The snapshot still sees the pre-erase world; the live store does not.
  EXPECT_TRUE(snap.Contains(IdTriple{1, 2, 3}));
  EXPECT_EQ(snap.Match(IdPattern{0, 2, 0}).size(), 2u);
  EXPECT_FALSE(store.Contains(IdTriple{1, 2, 3}));
  EXPECT_EQ(store.size(), 1u);
}

TEST(DeltaHexastoreSnapshotIoTest, RoundTripsAndCompactsFirst) {
  Dictionary dict;
  DeltaHexastore store(/*compact_threshold=*/1024);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    Term s = Term::Iri("http://ex/s" + std::to_string(rng.Uniform(40)));
    Term p = Term::Iri("http://ex/p" + std::to_string(rng.Uniform(8)));
    Term o = Term::Literal("v" + std::to_string(rng.Uniform(40)));
    store.Insert(IdTriple{dict.Intern(s), dict.Intern(p), dict.Intern(o)});
  }
  ASSERT_GT(store.StagedOps(), 0u);
  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(dict, &store, out).ok());
  EXPECT_EQ(store.StagedOps(), 0u);  // save compacted the delta

  Dictionary loaded_dict;
  DeltaHexastore loaded;
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadSnapshot(in, &loaded_dict, &loaded).ok());
  EXPECT_EQ(loaded.size(), store.size());
  EXPECT_EQ(MatchAll(loaded), MatchAll(store));
  EXPECT_EQ(loaded_dict.size(), dict.size());

  // Loading into a non-empty target is rejected.
  std::istringstream in2(out.str());
  EXPECT_FALSE(LoadSnapshot(in2, &loaded_dict, &loaded).ok());
}

TEST(DeltaHexastoreSnapshotIoTest, ByteIdenticalToGraphSnapshot) {
  // Build the same contents through a Graph and through a DeltaHexastore
  // sharing the Graph's dictionary; the two snapshots must match byte for
  // byte (compact-first keeps one on-disk format).
  Graph graph;
  std::vector<Triple> triples;
  for (int i = 0; i < 50; ++i) {
    triples.push_back(Triple{Term::Iri("http://ex/s" + std::to_string(i % 7)),
                             Term::Iri("http://ex/p" + std::to_string(i % 3)),
                             Term::Literal("v" + std::to_string(i))});
  }
  for (const Triple& t : triples) {
    graph.Insert(t);
  }
  DeltaHexastore store;
  for (const Triple& t : triples) {
    store.Insert(*graph.dict().TryEncode(t));
  }
  std::ostringstream graph_out;
  ASSERT_TRUE(SaveSnapshot(graph, graph_out).ok());
  std::ostringstream delta_out;
  ASSERT_TRUE(SaveSnapshot(graph.dict(), &store, delta_out).ok());
  EXPECT_EQ(graph_out.str(), delta_out.str());
}

}  // namespace
}  // namespace hexastore

// Concurrent-reader tests: an immutable Hexastore must serve pattern
// lookups, workload queries and advisor reads from many threads at once
// (reads only mutate the relaxed-atomic access counters), and a
// DeltaHexastore must serve snapshot-isolated readers while a writer
// stages ops and triggers compactions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/advisor.h"
#include "core/hexastore.h"
#include "data/lubm_generator.h"
#include "delta/delta_hexastore.h"
#include "dict/dictionary.h"
#include "util/rng.h"
#include "workload/lubm_queries.h"

namespace hexastore {
namespace {

TEST(ConcurrencyTest, ParallelPatternScansAgree) {
  Hexastore store;
  Rng rng(2026);
  for (int i = 0; i < 5000; ++i) {
    store.Insert({1 + rng.Uniform(80), 1 + rng.Uniform(10),
                  1 + rng.Uniform(80)});
  }
  // Reference answers computed single-threaded.
  std::vector<IdPattern> probes;
  std::vector<IdTripleVec> expected;
  for (int mask = 0; mask < 8; ++mask) {
    for (int k = 0; k < 10; ++k) {
      IdPattern q;
      if (mask & 1) q.s = 1 + rng.Uniform(81);
      if (mask & 2) q.p = 1 + rng.Uniform(11);
      if (mask & 4) q.o = 1 + rng.Uniform(81);
      probes.push_back(q);
      expected.push_back(store.Match(q));
    }
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        for (std::size_t i = 0; i < probes.size(); ++i) {
          if (store.Match(probes[i]) != expected[i]) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ParallelWorkloadQueriesAgree) {
  auto triples = data::LubmGenerator().Generate(20000);
  Dictionary dict;
  IdTripleVec encoded;
  for (const auto& t : triples) {
    encoded.push_back(dict.Encode(t));
  }
  Hexastore store;
  store.BulkLoad(encoded);
  workload::LubmIds ids = workload::LubmIds::Resolve(dict);

  const auto expect_q1 = workload::LubmRelatedToHexa(store, ids.course10);
  const auto expect_q4 = workload::LubmQ4Hexa(store, ids);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 30; ++round) {
        if (workload::LubmRelatedToHexa(store, ids.course10) !=
            expect_q1) {
          failures.fetch_add(1);
        }
        if (workload::LubmQ4Hexa(store, ids) != expect_q4) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// Reader threads scan through snapshot handles while one writer inserts
// past the compaction threshold over and over. Each snapshot must stay
// internally consistent (same answer on re-scan, size bookkeeping exact,
// membership agreeing with the scan) no matter how many compactions and
// generation swaps happen underneath it.
TEST(ConcurrencyTest, SnapshotReadersSurviveWriterCompactions) {
  // Small threshold: the writer triggers hundreds of compactions.
  DeltaHexastore store(/*compact_threshold=*/64);
  constexpr int kWriterOps = 20000;
  constexpr int kReaders = 4;

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &done, &failures, r] {
      Rng rng(1000 + r);
      while (!done.load(std::memory_order_acquire)) {
        DeltaHexastore::Snapshot snap = store.GetSnapshot();
        const IdTripleVec first = snap.Match(IdPattern{});
        if (first.size() != snap.size()) {
          failures.fetch_add(1);
        }
        // Writer keeps mutating the live store; this snapshot must not
        // move.
        const IdTripleVec second = snap.Match(IdPattern{});
        if (second != first) {
          failures.fetch_add(1);
        }
        // Membership agrees with the materialized scan.
        for (int probe = 0; probe < 10 && !first.empty(); ++probe) {
          const IdTriple& t = first[rng.Uniform(first.size())];
          if (!snap.Contains(t)) {
            failures.fetch_add(1);
          }
        }
        // Pattern scans answer from the same frozen generation.
        const Id p = 1 + rng.Uniform(8);
        IdTripleVec by_p;
        snap.Scan(IdPattern{0, p, 0},
                  [&by_p](const IdTriple& t) { by_p.push_back(t); });
        std::size_t expect = 0;
        for (const IdTriple& t : first) {
          expect += t.p == p ? 1 : 0;
        }
        if (by_p.size() != expect) {
          failures.fetch_add(1);
        }
      }
    });
  }

  Rng rng(2026);
  for (int i = 0; i < kWriterOps; ++i) {
    IdTriple t{1 + rng.Uniform(300), 1 + rng.Uniform(8),
               1 + rng.Uniform(300)};
    if (rng.Bernoulli(0.8)) {
      store.Insert(t);
    } else {
      store.Erase(t);
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(store.CompactionCount(), 0u);
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

// Merged accessor views taken by readers must keep answering from the
// generation they pinned while the writer compacts underneath.
TEST(ConcurrencyTest, MergedViewsPinTheirGeneration) {
  DeltaHexastore store(/*compact_threshold=*/32);
  constexpr Id kS = 1;
  constexpr Id kP = 2;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&store, &done, &failures] {
      while (!done.load(std::memory_order_acquire)) {
        const MergedList view = store.objects(kS, kP);
        const IdVec a = view.Materialize();
        const IdVec b = view.Materialize();  // same view, same answer
        if (a != b || a.size() != view.size()) {
          failures.fetch_add(1);
        }
        if (!IsStrictlySorted(a)) {
          failures.fetch_add(1);
        }
      }
    });
  }

  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const Id o = 1 + rng.Uniform(500);
    if (rng.Bernoulli(0.7)) {
      store.Insert({kS, kP, o});
    } else {
      store.Erase({kS, kP, o});
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, AccessCountersAccumulateAcrossThreads) {
  Hexastore store;
  store.Insert({1, 2, 3});
  store.ResetAccessCounts();
  constexpr int kThreads = 8;
  constexpr int kReads = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kReads; ++i) {
        store.subjects_of_predicate(2);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Relaxed atomics must not lose increments.
  EXPECT_EQ(store.access_count(Permutation::kPso),
            static_cast<std::uint64_t>(kThreads) * kReads);
  IndexAdvice advice = AdviseIndexes(store);
  EXPECT_NEAR(advice.share[static_cast<int>(Permutation::kPso)], 1.0,
              1e-12);
}

}  // namespace
}  // namespace hexastore

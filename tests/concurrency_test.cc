// Concurrent-reader tests: an immutable Hexastore must serve pattern
// lookups, workload queries and advisor reads from many threads at once
// (reads only mutate the relaxed-atomic access counters).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/advisor.h"
#include "core/hexastore.h"
#include "data/lubm_generator.h"
#include "dict/dictionary.h"
#include "util/rng.h"
#include "workload/lubm_queries.h"

namespace hexastore {
namespace {

TEST(ConcurrencyTest, ParallelPatternScansAgree) {
  Hexastore store;
  Rng rng(2026);
  for (int i = 0; i < 5000; ++i) {
    store.Insert({1 + rng.Uniform(80), 1 + rng.Uniform(10),
                  1 + rng.Uniform(80)});
  }
  // Reference answers computed single-threaded.
  std::vector<IdPattern> probes;
  std::vector<IdTripleVec> expected;
  for (int mask = 0; mask < 8; ++mask) {
    for (int k = 0; k < 10; ++k) {
      IdPattern q;
      if (mask & 1) q.s = 1 + rng.Uniform(81);
      if (mask & 2) q.p = 1 + rng.Uniform(11);
      if (mask & 4) q.o = 1 + rng.Uniform(81);
      probes.push_back(q);
      expected.push_back(store.Match(q));
    }
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        for (std::size_t i = 0; i < probes.size(); ++i) {
          if (store.Match(probes[i]) != expected[i]) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ParallelWorkloadQueriesAgree) {
  auto triples = data::LubmGenerator().Generate(20000);
  Dictionary dict;
  IdTripleVec encoded;
  for (const auto& t : triples) {
    encoded.push_back(dict.Encode(t));
  }
  Hexastore store;
  store.BulkLoad(encoded);
  workload::LubmIds ids = workload::LubmIds::Resolve(dict);

  const auto expect_q1 = workload::LubmRelatedToHexa(store, ids.course10);
  const auto expect_q4 = workload::LubmQ4Hexa(store, ids);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 30; ++round) {
        if (workload::LubmRelatedToHexa(store, ids.course10) !=
            expect_q1) {
          failures.fetch_add(1);
        }
        if (workload::LubmQ4Hexa(store, ids) != expect_q4) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, AccessCountersAccumulateAcrossThreads) {
  Hexastore store;
  store.Insert({1, 2, 3});
  store.ResetAccessCounts();
  constexpr int kThreads = 8;
  constexpr int kReads = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kReads; ++i) {
        store.subjects_of_predicate(2);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Relaxed atomics must not lose increments.
  EXPECT_EQ(store.access_count(Permutation::kPso),
            static_cast<std::uint64_t>(kThreads) * kReads);
  IndexAdvice advice = AdviseIndexes(store);
  EXPECT_NEAR(advice.share[static_cast<int>(Permutation::kPso)], 1.0,
              1e-12);
}

}  // namespace
}  // namespace hexastore

// Tests for the paper's space claims (§4.1-§4.2): the worst-case
// five-fold key-entry bound, list sharing, and the relative memory
// ordering Hexastore > COVP2 > COVP1 that Figure 15 plots.
#include <gtest/gtest.h>

#include "baseline/triple_table.h"
#include "baseline/vertical_store.h"
#include "core/hexastore.h"
#include "data/barton_generator.h"
#include "dict/dictionary.h"
#include "data/lubm_generator.h"
#include "util/rng.h"

namespace hexastore {
namespace {

TEST(SpaceBoundTest, WorstCaseIsExactlyFiveFold) {
  // Adversarial load: every resource appears exactly once in the data set
  // (each triple uses three fresh ids). The paper: "the key of each
  // resource in this triple requires five new entries ... worst-case
  // space requirement of a Hexastore is quintuple of a triples table."
  Hexastore store;
  const std::size_t n = 1000;
  Id next = 1;
  for (std::size_t i = 0; i < n; ++i) {
    store.Insert({next, next + 1, next + 2});
    next += 3;
  }
  MemoryStats stats = store.Stats();
  // Triples table would hold 3n keys; the bound predicts exactly 5 * 3n.
  EXPECT_EQ(stats.key_entries, 5 * 3 * n);
}

TEST(SpaceBoundTest, SharedResourcesStayUnderFiveFold) {
  // Realistic data reuses resources, so the ratio must drop below 5.
  Hexastore store;
  Rng rng(42);
  const std::size_t n = 5000;
  std::size_t inserted = 0;
  while (inserted < n) {
    if (store.Insert({1 + rng.Uniform(300), 1 + rng.Uniform(20),
                      1 + rng.Uniform(300)})) {
      ++inserted;
    }
  }
  MemoryStats stats = store.Stats();
  double ratio = static_cast<double>(stats.key_entries) /
                 static_cast<double>(3 * store.size());
  EXPECT_LT(ratio, 5.0);
  EXPECT_GE(ratio, 1.0);
}

TEST(SpaceBoundTest, TerminalSharingHalvesListStorage) {
  // Without sharing, six indexes would store 6n terminal entries; with
  // sharing there are exactly 3n (n per family).
  Hexastore store;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    store.Insert({1 + rng.Uniform(100), 1 + rng.Uniform(10),
                  1 + rng.Uniform(100)});
  }
  const std::size_t n = store.size();
  const auto& pool = store.pool();
  EXPECT_EQ(pool.EntryCount(ListFamily::kObjects), n);
  EXPECT_EQ(pool.EntryCount(ListFamily::kPredicates), n);
  EXPECT_EQ(pool.EntryCount(ListFamily::kSubjects), n);
}

TEST(MemoryOrderingTest, HexastoreAboveCovp2AboveCovp1OnLubm) {
  auto triples = data::LubmGenerator().Generate(60000);
  Dictionary dict;
  IdTripleVec encoded;
  for (const auto& t : triples) {
    encoded.push_back(dict.Encode(t));
  }
  Hexastore hexa;
  VerticalStore covp1(false);
  VerticalStore covp2(true);
  hexa.BulkLoad(encoded);
  covp1.BulkLoad(encoded);
  covp2.BulkLoad(encoded);

  EXPECT_GT(hexa.MemoryBytes(), covp2.MemoryBytes());
  EXPECT_GT(covp2.MemoryBytes(), covp1.MemoryBytes());

  // Paper §5.3.3: "in practice, Hexastore requires a four-fold increase
  // in memory in comparison to COVP1". Allow a generous band around that.
  double ratio = static_cast<double>(hexa.MemoryBytes()) /
                 static_cast<double>(covp1.MemoryBytes());
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 8.0);
}

TEST(MemoryOrderingTest, SameOrderingOnBarton) {
  auto triples = data::BartonGenerator().Generate(60000);
  Dictionary dict;
  IdTripleVec encoded;
  for (const auto& t : triples) {
    encoded.push_back(dict.Encode(t));
  }
  Hexastore hexa;
  VerticalStore covp1(false);
  VerticalStore covp2(true);
  hexa.BulkLoad(encoded);
  covp1.BulkLoad(encoded);
  covp2.BulkLoad(encoded);
  EXPECT_GT(hexa.MemoryBytes(), covp2.MemoryBytes());
  EXPECT_GT(covp2.MemoryBytes(), covp1.MemoryBytes());
}

TEST(MemoryStatsTest, StatsBreakdownSumsToTotal) {
  Hexastore store;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    store.Insert({1 + rng.Uniform(50), 1 + rng.Uniform(8),
                  1 + rng.Uniform(50)});
  }
  MemoryStats stats = store.Stats();
  std::size_t manual = 0;
  for (std::size_t b : stats.perm_index_bytes) {
    manual += b;
  }
  for (std::size_t b : stats.terminal_bytes) {
    manual += b;
  }
  EXPECT_EQ(stats.Total(), manual);
  EXPECT_EQ(store.MemoryBytes(), stats.Total());
}

}  // namespace
}  // namespace hexastore

// Unit tests for the SPARQL-subset parser.
#include <gtest/gtest.h>

#include "query/sparql_parser.h"

namespace hexastore {
namespace {

TEST(SparqlParserTest, MinimalQuery) {
  auto r = ParseSparql("SELECT ?s WHERE { ?s <http://x/p> ?o }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ParsedQuery& q = r.value();
  EXPECT_FALSE(q.distinct);
  EXPECT_EQ(q.select_vars, (std::vector<std::string>{"s"}));
  ASSERT_EQ(q.patterns.size(), 1u);
  EXPECT_TRUE(q.patterns[0].s.is_var());
  EXPECT_EQ(q.patterns[0].s.var(), "s");
  EXPECT_FALSE(q.patterns[0].p.is_var());
  EXPECT_EQ(q.patterns[0].p.term(), Term::Iri("http://x/p"));
  EXPECT_TRUE(q.patterns[0].o.is_var());
}

TEST(SparqlParserTest, SelectStar) {
  auto r = ParseSparql("SELECT * WHERE { ?s ?p ?o }");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().select_vars.empty());
}

TEST(SparqlParserTest, MultiplePatternsWithDots) {
  auto r = ParseSparql(
      "SELECT ?a ?b WHERE { ?a <p> ?x . ?x <q> ?b . ?b <r> \"v\" }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().patterns.size(), 3u);
}

TEST(SparqlParserTest, PrefixedNames) {
  auto r = ParseSparql(
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "SELECT ?n WHERE { ?s foaf:name ?n }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().patterns[0].p.term(),
            Term::Iri("http://xmlns.com/foaf/0.1/name"));
}

TEST(SparqlParserTest, UndeclaredPrefixFails) {
  auto r = ParseSparql("SELECT ?s WHERE { ?s foaf:name ?n }");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("foaf"), std::string::npos);
}

TEST(SparqlParserTest, KeywordA) {
  auto r = ParseSparql("SELECT ?s WHERE { ?s a <http://x/Person> }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().patterns[0].p.term(), Term::Iri(kRdfTypeIri));
}

TEST(SparqlParserTest, Literals) {
  auto r = ParseSparql(
      "SELECT ?s WHERE { ?s <p> \"plain\" . ?s <q> \"tagged\"@en . "
      "?s <r> \"7\"^^<http://x/int> . ?s <t> 42 }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& ps = r.value().patterns;
  EXPECT_EQ(ps[0].o.term(), Term::Literal("plain"));
  EXPECT_EQ(ps[1].o.term(), Term::LangLiteral("tagged", "en"));
  EXPECT_EQ(ps[2].o.term(), Term::TypedLiteral("7", "http://x/int"));
  EXPECT_EQ(ps[3].o.term(),
            Term::TypedLiteral(
                "42", "http://www.w3.org/2001/XMLSchema#integer"));
}

TEST(SparqlParserTest, DistinctOrderLimit) {
  auto r = ParseSparql(
      "SELECT DISTINCT ?s WHERE { ?s ?p ?o } ORDER BY ?s LIMIT 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().distinct);
  EXPECT_EQ(r.value().order_by, (std::vector<std::string>{"s"}));
  ASSERT_TRUE(r.value().limit.has_value());
  EXPECT_EQ(*r.value().limit, 10u);
}

TEST(SparqlParserTest, FilterComparisons) {
  auto r = ParseSparql(
      "SELECT ?s WHERE { ?s <p> ?o . FILTER(?o != \"x\") . "
      "FILTER(?s = ?o) FILTER(?o < \"zzz\") }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& fs = r.value().filters;
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].op, FilterOp::kNe);
  EXPECT_TRUE(fs[0].lhs.is_var);
  EXPECT_FALSE(fs[0].rhs.is_var);
  EXPECT_EQ(fs[1].op, FilterOp::kEq);
  EXPECT_TRUE(fs[1].rhs.is_var);
  EXPECT_EQ(fs[2].op, FilterOp::kLt);
}

TEST(SparqlParserTest, CaseInsensitiveKeywords) {
  auto r = ParseSparql("select distinct ?s where { ?s ?p ?o } limit 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().distinct);
}

TEST(SparqlParserTest, CommentsAreSkipped) {
  auto r = ParseSparql(
      "# leading comment\nSELECT ?s # trailing\nWHERE { ?s ?p ?o }");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(SparqlParserTest, Errors) {
  EXPECT_FALSE(ParseSparql("").ok());
  EXPECT_FALSE(ParseSparql("WHERE { ?s ?p ?o }").ok());        // no SELECT
  EXPECT_FALSE(ParseSparql("SELECT WHERE { ?s ?p ?o }").ok()); // no vars
  EXPECT_FALSE(ParseSparql("SELECT ?s { ?s ?p ?o }").ok());    // no WHERE
  EXPECT_FALSE(ParseSparql("SELECT ?s WHERE { ?s ?p }").ok()); // bad triple
  EXPECT_FALSE(ParseSparql("SELECT ?s WHERE { ?s ?p ?o ").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?s WHERE { }").ok());       // empty BGP
  EXPECT_FALSE(ParseSparql("SELECT ?s WHERE { ?s ?p ?o } LIMIT x").ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?s WHERE { ?s \"lit\" ?o }").ok());  // literal pred
  EXPECT_FALSE(ParseSparql("SELECT ?s WHERE { ?s ?p ?o } garbage").ok());
}

TEST(SparqlParserTest, FilterLessThanDoesNotEatIri) {
  // '<' as comparison must coexist with IRIs.
  auto r = ParseSparql(
      "SELECT ?s WHERE { ?s <http://x/p> ?o . FILTER(?o < ?s) }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().patterns[0].p.term(), Term::Iri("http://x/p"));
  EXPECT_EQ(r.value().filters[0].op, FilterOp::kLt);
}

}  // namespace
}  // namespace hexastore

// Unit and integration tests for basic-graph-pattern evaluation, run
// against the Figure 1 data of the paper.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/triple_table.h"
#include "core/hexastore.h"
#include "query/bgp.h"

namespace hexastore {
namespace {

PatternTerm B(const Term& t) { return PatternTerm::Bound(t); }
PatternTerm V(const std::string& name) {
  return PatternTerm::Variable(name);
}
Term I(const std::string& iri) { return Term::Iri(iri); }
Term L(const std::string& lit) { return Term::Literal(lit); }

class BgpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The paper's Figure 1 table.
    auto add = [&](const std::string& s, const std::string& p,
                   const Term& o) {
      IdTriple t = dict_.Encode({I(s), I(p), o});
      hexa_.Insert(t);
      table_.Insert(t);
    };
    add("ID1", "type", I("FullProfessor"));
    add("ID1", "teacherOf", L("AI"));
    add("ID1", "bachelorFrom", L("MIT"));
    add("ID1", "mastersFrom", L("Cambridge"));
    add("ID1", "phdFrom", L("Yale"));
    add("ID2", "type", I("AssocProfessor"));
    add("ID2", "worksFor", L("MIT"));
    add("ID2", "teacherOf", L("DataBases"));
    add("ID2", "bachelorsFrom", L("Yale"));
    add("ID2", "phdFrom", L("Stanford"));
    add("ID3", "type", I("GradStudent"));
    add("ID3", "advisor", I("ID2"));
    add("ID3", "teachingAssist", L("AI"));
    add("ID3", "bachelorsFrom", L("Stanford"));
    add("ID3", "mastersFrom", L("Princeton"));
    add("ID4", "type", I("GradStudent"));
    add("ID4", "advisor", I("ID1"));
    add("ID4", "takesCourse", L("DataBases"));
    add("ID4", "bachelorsFrom", L("Columbia"));
  }

  Dictionary dict_;
  Hexastore hexa_;
  TripleTableStore table_;
};

TEST_F(BgpTest, FigureOneFirstQuery) {
  // "SELECT A.property WHERE A.subj = ID2 AND A.obj = 'MIT'": what
  // relationship does ID2 have to MIT?
  ResultSet r = EvalBgp(hexa_, dict_,
                        {{B(I("ID2")), V("property"), B(L("MIT"))}});
  ASSERT_EQ(r.rows.size(), 1u);
  VarId col = r.Column("property");
  ASSERT_NE(col, kNoVar);
  EXPECT_EQ(dict_.term(r.rows[0][static_cast<std::size_t>(col)]),
            I("worksFor"));
}

TEST_F(BgpTest, FigureOneSecondQuery) {
  // People with the same relationship to Stanford as ID1 has to Yale
  // (ID1 phdFrom Yale; ID2 phdFrom Stanford).
  ResultSet r = EvalBgp(
      hexa_, dict_,
      {{B(I("ID1")), V("prop"), B(L("Yale"))},
       {V("who"), V("prop"), B(L("Stanford"))}});
  ASSERT_EQ(r.rows.size(), 1u);
  VarId who = r.Column("who");
  ASSERT_NE(who, kNoVar);
  EXPECT_EQ(dict_.term(r.rows[0][static_cast<std::size_t>(who)]), I("ID2"));
}

TEST_F(BgpTest, UnboundPropertyJoin) {
  // Who is related to both MIT and Yale in any way? (non-property-bound,
  // the paper's motivating query class). ID1: bachelorFrom MIT, phdFrom
  // Yale. ID2: worksFor MIT, bachelorsFrom Yale.
  ResultSet r = EvalBgp(hexa_, dict_,
                        {{V("x"), V("p1"), B(L("MIT"))},
                         {V("x"), V("p2"), B(L("Yale"))}});
  std::set<Term> people;
  VarId x = r.Column("x");
  for (const Row& row : r.rows) {
    people.insert(dict_.term(row[static_cast<std::size_t>(x)]));
  }
  EXPECT_EQ(people, (std::set<Term>{I("ID1"), I("ID2")}));
}

TEST_F(BgpTest, ChainJoin) {
  // Advisors' bachelor institutions of grad students:
  // ?s advisor ?a . ?a bachelorFrom ?u (only ID1 has bachelorFrom).
  ResultSet r = EvalBgp(hexa_, dict_,
                        {{V("s"), B(I("advisor")), V("a")},
                         {V("a"), B(I("bachelorFrom")), V("u")}});
  ASSERT_EQ(r.rows.size(), 1u);
  VarId s = r.Column("s");
  VarId u = r.Column("u");
  EXPECT_EQ(dict_.term(r.rows[0][static_cast<std::size_t>(s)]), I("ID4"));
  EXPECT_EQ(dict_.term(r.rows[0][static_cast<std::size_t>(u)]), L("MIT"));
}

TEST_F(BgpTest, HexastoreAndTripleTableAgree) {
  std::vector<std::vector<TriplePattern>> queries = {
      {{V("s"), B(I("type")), V("t")}},
      {{V("s"), V("p"), B(L("MIT"))}},
      {{V("s"), B(I("type")), B(I("GradStudent"))},
       {V("s"), B(I("advisor")), V("a")}},
      {{V("s"), V("p"), V("o")}},
      {{V("x"), V("p"), B(L("Stanford"))},
       {V("x"), B(I("type")), V("t")}},
  };
  for (const auto& q : queries) {
    ResultSet r1 = EvalBgp(hexa_, dict_, q);
    ResultSet r2 = EvalBgp(table_, dict_, q);
    auto sorted = [](ResultSet r) {
      std::sort(r.rows.begin(), r.rows.end());
      return r.rows;
    };
    EXPECT_EQ(sorted(std::move(r1)), sorted(std::move(r2)));
  }
}

TEST_F(BgpTest, RepeatedVariableInOnePattern) {
  // ?x ?p ?x matches nothing in this data set.
  ResultSet r = EvalBgp(hexa_, dict_, {{V("x"), V("p"), V("x")}});
  EXPECT_TRUE(r.rows.empty());

  // Add a self-loop and try again.
  IdTriple loop = dict_.Encode({I("ID1"), I("knows"), I("ID1")});
  hexa_.Insert(loop);
  ResultSet r2 = EvalBgp(hexa_, dict_, {{V("x"), V("p"), V("x")}});
  ASSERT_EQ(r2.rows.size(), 1u);
  EXPECT_EQ(dict_.term(r2.rows[0][static_cast<std::size_t>(
                r2.Column("x"))]),
            I("ID1"));
}

TEST_F(BgpTest, EmptyResultForUnknownConstant) {
  ResultSet r = EvalBgp(hexa_, dict_,
                        {{V("s"), B(I("definitely-not-present")), V("o")}});
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(BgpTest, CrossProductWhenDisconnected) {
  // Two disconnected single-solution patterns produce their product.
  ResultSet r = EvalBgp(hexa_, dict_,
                        {{V("a"), B(I("worksFor")), V("w")},
                         {V("b"), B(I("takesCourse")), V("c")}});
  EXPECT_EQ(r.rows.size(), 1u);  // 1 worksFor x 1 takesCourse
  EXPECT_EQ(r.vars.size(), 4u);
}

}  // namespace
}  // namespace hexastore

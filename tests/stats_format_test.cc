// Golden-format tests for every stats ToString() report: the exact text
// is part of the observability surface (docs/observability.md "Export
// formats"), so a change here must be deliberate and versioned, not an
// accident of refactoring.
#include <gtest/gtest.h>

#include <string>

#include "core/stats.h"

namespace hexastore {
namespace {

TEST(StatsFormatTest, MemoryStatsGolden) {
  MemoryStats m;
  for (int i = 0; i < 6; ++i) m.perm_index_bytes[i] = 100 * (i + 1);
  m.terminal_bytes[0] = 7;
  m.terminal_bytes[1] = 8;
  m.terminal_bytes[2] = 9;
  m.key_entries = 55;
  EXPECT_EQ(m.ToString(),
            "Hexastore memory breakdown:\n"
            "  index spo: 100 bytes\n"
            "  index sop: 200 bytes\n"
            "  index pso: 300 bytes\n"
            "  index pos: 400 bytes\n"
            "  index osp: 500 bytes\n"
            "  index ops: 600 bytes\n"
            "  terminal o(s,p): 7 bytes\n"
            "  terminal p(s,o): 8 bytes\n"
            "  terminal s(p,o): 9 bytes\n"
            "  total: 2124 bytes, key entries: 55\n");
  EXPECT_EQ(m.Total(), 2124u);
}

// Flat synchronous store: only the three always-on lines print.
TEST(StatsFormatTest, DeltaStatsFlatGolden) {
  DeltaStats d;
  d.staged_inserts = 3;
  d.staged_tombstones = 1;
  d.pattern_tombstones = 2;
  d.compact_threshold = 1000;
  d.compactions = 4;
  d.epoch = 5;
  d.base_triples = 600;
  d.base_bytes = 7000;
  d.delta_bytes = 800;
  EXPECT_EQ(d.ToString(),
            "DeltaHexastore delta layer:\n"
            "  staged: 3 inserts, 1 tombstones, 2 pattern tombstones "
            "(threshold 1000)\n"
            "  compactions: 4, epoch: 5\n"
            "  base: 600 triples, 7000 bytes; delta: 800 bytes\n");
}

// Every conditional section armed: background, levels, filters, budget.
TEST(StatsFormatTest, DeltaStatsFullGolden) {
  DeltaStats d;
  d.staged_inserts = 1;
  d.compact_threshold = 100;
  d.compactions = 2;
  d.epoch = 3;
  d.base_triples = 4;
  d.base_bytes = 5;
  d.delta_bytes = 6;
  d.background = true;
  d.seals = 7;
  d.background_merges = 8;
  d.merge_discards = 1;
  d.seal_overflows = 2;
  d.sealed_ops = 9;
  d.l0_run_limit = 4;
  d.l0_runs = 2;
  d.l0_ops = 20;
  d.l1_ops = 30;
  d.l0_merges = 5;
  d.base_merges = 6;
  d.merge_run_ops = 50;
  d.base_rebuild_triples = 70;
  d.staged_ops_total = 100;
  d.filter_bits_per_key = 10;
  d.filter_probes = 40;
  d.filter_skips = 30;
  d.filter_false_positives = 3;
  d.filters_dropped = 1;
  d.memory_budget_bytes = 4096;
  d.resident_bytes = 2048;
  d.budget_seals = 2;
  d.budget_folds = 1;
  d.budget_base_merges = 1;
  EXPECT_DOUBLE_EQ(d.WriteAmplification(), 1.2);
  EXPECT_EQ(d.ToString(),
            "DeltaHexastore delta layer:\n"
            "  staged: 1 inserts, 0 tombstones, 0 pattern tombstones "
            "(threshold 100)\n"
            "  compactions: 2, epoch: 3\n"
            "  base: 4 triples, 5 bytes; delta: 6 bytes\n"
            "  background: 7 seals, 8 merges (1 discarded), 2 overflows, "
            "9 ops sealed now\n"
            "  levels: L0 2 runs / 20 ops (fold at 4), L1 30 ops\n"
            "  merges: 5 L0->L1 folds, 6 base merges; write amplification "
            "1.2 (50 run ops + 70 rebuilt triples over 100 staged)\n"
            "  filters: 10 bits/key; 40 probes, 30 skips, 3 false "
            "positives, 1 dropped\n"
            "  budget: 2048 / 4096 bytes resident; forced 2 seals, 1 "
            "folds, 1 base merges\n");
}

TEST(StatsFormatTest, EpochStatsGolden) {
  EpochStats e;
  e.global_epoch = 10;
  e.generations_published = 9;
  e.generations_retired = 8;
  e.generations_reclaimed = 7;
  e.retire_queue_depth = 1;
  e.handles_acquired = 500;
  e.active_reader_sections = 2;
  EXPECT_EQ(e.ToString(),
            "generation gate:\n"
            "  epoch: 10, published: 9, retired: 8, reclaimed: 7\n"
            "  retire queue: 1, handles acquired: 500, readers "
            "mid-acquire: 2\n");
}

TEST(StatsFormatTest, WalStatsGolden) {
  WalStats w;
  w.records_appended = 100;
  w.bytes_appended = 2048;
  w.commit_requests = 50;
  w.fsyncs = 10;
  w.rotations = 3;
  w.checkpoints = 2;
  EXPECT_EQ(w.ToString(),
            "write-ahead log:\n"
            "  appended: 100 records, 2048 bytes\n"
            "  commits: 50, fsyncs: 10, rotations: 3, checkpoints: 2\n");
}

// The snapshot concatenates the sections; the WAL block appears only on
// a durable store.
TEST(StatsFormatTest, StatsSnapshotConcatenation) {
  StatsSnapshot snap;
  snap.delta.compact_threshold = 10;
  snap.epoch.global_epoch = 1;
  const std::string without_wal = snap.ToString();
  EXPECT_EQ(without_wal, snap.delta.ToString() + snap.epoch.ToString());
  EXPECT_EQ(without_wal.find("write-ahead log"), std::string::npos);

  snap.has_wal = true;
  snap.wal.records_appended = 5;
  EXPECT_EQ(snap.ToString(), snap.delta.ToString() + snap.epoch.ToString() +
                                 snap.wal.ToString());
}

}  // namespace
}  // namespace hexastore

// Tests for the unified query::Session API (query/session.h): pin
// policies and write visibility, per-query deadlines, ProfileSink
// feeding, plan-cache integration, and equivalence with the deprecated
// RunSparql / EvalBgpPinned shims.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/hexastore.h"
#include "delta/delta_hexastore.h"
#include "dict/dictionary.h"
#include "query/bgp.h"
#include "query/plan_cache.h"
#include "query/result_json.h"
#include "query/session.h"
#include "query/sparql_engine.h"

namespace hexastore {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 8; ++i) {
      Add("s" + std::to_string(i), "knows", "s" + std::to_string(i + 1));
      Add("s" + std::to_string(i), "type", "Person");
    }
    store_.GetSnapshot();  // publish: wait-free readers see the data
  }

  void Add(const std::string& s, const std::string& p,
           const std::string& o) {
    store_.Insert(dict_.Encode(Triple{Term::Iri("http://x/" + s),
                                      Term::Iri("http://x/" + p),
                                      Term::Iri("http://x/" + o)}));
  }

  TriplePattern Pat(const std::string& s, const std::string& p,
                    const std::string& o) {
    auto slot = [](const std::string& t) {
      return t[0] == '?' ? PatternTerm::Variable(t.substr(1))
                         : PatternTerm::Bound(Term::Iri("http://x/" + t));
    };
    return TriplePattern{slot(s), slot(p), slot(o)};
  }

  Dictionary dict_;
  DeltaHexastore store_;
};

constexpr const char* kChainQuery =
    "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . "
    "?b <http://x/knows> ?c } ORDER BY ?a";

TEST_F(SessionTest, QueryMatchesLegacyRunSparql) {
  query::Session session(store_, dict_);
  auto via_session = session.Query(kChainQuery);
  ASSERT_TRUE(via_session.ok()) << via_session.status().ToString();

  auto legacy = RunSparql(store_, dict_, kChainQuery);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(ResultSetToJson(via_session.value().set, dict_),
            ResultSetToJson(legacy.value(), dict_));
  // Sessions always profile: phase times and rows populated.
  EXPECT_EQ(via_session.value().profile.rows_out,
            via_session.value().set.rows.size());
  EXPECT_GT(via_session.value().profile.patterns.size(), 0u);
}

TEST_F(SessionTest, WaitFreePinSeesOnlyPublishedState) {
  query::SessionOptions wait_free;
  wait_free.pin = query::PinPolicy::kWaitFree;
  query::Session pinned(store_, dict_, wait_free);

  query::SessionOptions linearizable;
  linearizable.pin = query::PinPolicy::kLinearizable;
  query::Session fresh(store_, dict_, linearizable);

  const std::size_t before =
      pinned.Query(kChainQuery).value().set.rows.size();

  // Stage (but do not publish) one more link in the chain.
  Add("s8", "knows", "s9");

  // The wait-free session still reads the published generation...
  EXPECT_EQ(pinned.Query(kChainQuery).value().set.rows.size(), before);
  // ...the linearizable one serializes with writers and sees the write.
  EXPECT_EQ(fresh.Query(kChainQuery).value().set.rows.size(), before + 1);
  // Publication catches the wait-free session up.
  store_.GetSnapshot();
  EXPECT_EQ(pinned.Query(kChainQuery).value().set.rows.size(), before + 1);
}

TEST_F(SessionTest, PlainTripleStoreForcesPinNone) {
  Hexastore plain;
  Dictionary dict;
  plain.Insert(dict.Encode(Triple{Term::Iri("http://x/a"),
                                  Term::Iri("http://x/p"),
                                  Term::Iri("http://x/b")}));
  query::SessionOptions options;
  options.pin = query::PinPolicy::kWaitFree;  // impossible: no gate
  query::Session session(plain, dict, options);
  EXPECT_EQ(session.options().pin, query::PinPolicy::kNone);
  auto r = session.Query("SELECT ?s WHERE { ?s <http://x/p> ?o }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().set.rows.size(), 1u);
}

TEST_F(SessionTest, DeadlineExceededSurfacesAsError) {
  query::SessionOptions options;
  options.deadline_ns = 1;  // nothing real finishes in 1ns
  query::Session session(store_, dict_, options);
  auto r = session.Query(kChainQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // The profile still recorded the overrun for observability.
  EXPECT_TRUE(session.last_profile().deadline_exceeded);
}

TEST_F(SessionTest, ZeroDeadlineMeansUnlimited) {
  query::SessionOptions options;
  options.deadline_ns = 0;
  query::Session session(store_, dict_, options);
  EXPECT_TRUE(session.Query(kChainQuery).ok());
}

TEST_F(SessionTest, SinkFedOnSuccessAndOnDeadline) {
  ProfileSink sink(/*slow_threshold_ns=*/0);
  query::SessionOptions options;
  options.sink = &sink;
  query::Session session(store_, dict_, options);
  ASSERT_TRUE(session.Query(kChainQuery).ok());
  EXPECT_EQ(sink.histogram(QueryKind::kSparql)->Snapshot().count, 1u);

  query::SessionOptions doomed = options;
  doomed.deadline_ns = 1;
  query::Session hurried(store_, dict_, doomed);
  ASSERT_FALSE(hurried.Query(kChainQuery).ok());
  // Deadline overruns are recorded too — they are exactly the queries
  // the slow-query log exists for.
  EXPECT_EQ(sink.histogram(QueryKind::kSparql)->Snapshot().count, 2u);
}

TEST_F(SessionTest, PlanCacheServesRepeatedTemplates) {
  PlanCache cache;
  query::SessionOptions options;
  options.plan_cache = &cache;
  query::Session session(store_, dict_, options);

  auto first = session.Query(kChainQuery);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().from_plan_cache);
  auto second = session.Query(kChainQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().from_plan_cache);
  EXPECT_EQ(ResultSetToJson(first.value().set, dict_),
            ResultSetToJson(second.value().set, dict_));

  // Renamed variables, same shape: still a hit.
  auto renamed = session.Query(
      "SELECT ?p ?r WHERE { ?p <http://x/knows> ?q . "
      "?q <http://x/knows> ?r } ORDER BY ?p");
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE(renamed.value().from_plan_cache);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST_F(SessionTest, EvalBgpMatchesPinnedShim) {
  std::vector<TriplePattern> patterns = {Pat("?a", "knows", "?b"),
                                         Pat("?b", "knows", "?c")};
  query::Session session(store_, dict_);
  auto via_session = session.EvalBgp(patterns);
  ASSERT_TRUE(via_session.ok());
  EXPECT_EQ(via_session.value().profile.kind, QueryKind::kBgp);

  QueryProfile profile;
  ResultSet via_shim = EvalBgpPinned(store_, dict_, patterns, &profile);
  EXPECT_EQ(ResultSetToJson(via_session.value().set, dict_),
            ResultSetToJson(via_shim, dict_));
  // The shim preserves the legacy profile contract: patterns attached,
  // total covers parse+pin.
  EXPECT_EQ(profile.patterns.size(), 2u);
  EXPECT_GT(profile.rows_out, 0u);
}

TEST_F(SessionTest, ExplainIsDeterministicAndAnalyzeRuns) {
  query::Session session(store_, dict_);
  auto plan_a = session.Explain(kChainQuery);
  auto plan_b = session.Explain(kChainQuery);
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_b.ok());
  EXPECT_EQ(plan_a.value(), plan_b.value());
  EXPECT_NE(plan_a.value().find("plan:"), std::string::npos);

  auto analyzed = session.ExplainAnalyze(kChainQuery);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_NE(analyzed.value().find("actual"), std::string::npos);
}

TEST_F(SessionTest, ParseErrorsPropagate) {
  query::Session session(store_, dict_);
  auto r = session.Query("SELECT WHERE {");
  ASSERT_FALSE(r.ok());
}

}  // namespace
}  // namespace hexastore

// Tests for the per-query profiling layer (query/profile.h): q-error
// pins, phase accounting, the ProfileSink histograms and slow-query
// ring, and the EXPLAIN ANALYZE rendering.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/hexastore.h"
#include "delta/delta_hexastore.h"
#include "dict/dictionary.h"
#include "obs/metrics.h"
#include "query/bgp.h"
#include "query/merge_join.h"
#include "query/path.h"
#include "query/profile.h"
#include "query/sparql_engine.h"

namespace hexastore {
namespace {

TriplePattern TP(PatternTerm s, PatternTerm p, PatternTerm o) {
  return {std::move(s), std::move(p), std::move(o)};
}
PatternTerm B(const std::string& iri) {
  return PatternTerm::Bound(Term::Iri(iri));
}
PatternTerm V(const std::string& name) {
  return PatternTerm::Variable(name);
}

TEST(QErrorTest, PerfectAndZeroEstimatesPinToOne) {
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);  // both clamp to 1
  EXPECT_DOUBLE_EQ(QError(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(QError(1.0, 10.0), 10.0);  // symmetric
  EXPECT_DOUBLE_EQ(QError(0.0, 5.0), 5.0);    // est clamps to 1
}

class QueryProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](const std::string& s, const std::string& p,
                   const std::string& o) {
      store_.Insert(
          dict_.Encode({Term::Iri(s), Term::Iri(p), Term::Iri(o)}));
    };
    add("s0", "p1", "o0");
    for (int i = 0; i < 100; ++i) {
      add("s" + std::to_string(i), "p2", "x" + std::to_string(i % 10));
    }
  }

  Hexastore store_;
  Dictionary dict_;
};

TEST_F(QueryProfileTest, FullyBoundPatternReportsQErrorOne) {
  // A fully-bound present pattern goes through the exact membership
  // estimate (EstimateMatches == 1) and emits exactly one row per
  // probe, so its q-error is exactly 1 — the satellite pin.
  QueryProfile profile;
  ResultSet r =
      EvalBgp(store_, dict_, {TP(B("s0"), B("p1"), B("o0"))}, &profile);
  EXPECT_EQ(r.rows.size(), 1u);
  ASSERT_EQ(profile.patterns.size(), 1u);
  EXPECT_EQ(profile.patterns[0].estimated, 1u);
  EXPECT_EQ(profile.patterns[0].probes, 1u);
  EXPECT_EQ(profile.patterns[0].rows_emitted, 1u);
  EXPECT_DOUBLE_EQ(profile.patterns[0].QErrorValue(), 1.0);
  EXPECT_DOUBLE_EQ(profile.MaxQError(), 1.0);
}

TEST_F(QueryProfileTest, ProfiledAndUnprofiledResultsMatch) {
  const std::vector<TriplePattern> patterns = {
      TP(V("x"), B("p1"), V("y")), TP(V("x"), B("p2"), V("z"))};
  QueryProfile profile;
  ResultSet profiled = EvalBgp(store_, dict_, patterns, &profile);
  ResultSet plain = EvalBgp(store_, dict_, patterns);
  EXPECT_EQ(profiled.rows, plain.rows);
  EXPECT_EQ(profile.rows_out, profiled.rows.size());
  EXPECT_EQ(profile.total_ns,
            profile.parse_ns + profile.plan_ns + profile.eval_ns);
  ASSERT_EQ(profile.patterns.size(), 2u);
  // The selective p1 pattern runs first and scans exactly its 1 triple.
  EXPECT_EQ(profile.patterns[0].rows_scanned, 1u);
  EXPECT_GT(profile.patterns[0].wall_ns, 0u);
  EXPECT_GT(profile.estimate_probes, 0u);
}

TEST_F(QueryProfileTest, SparqlProfileRecordsPhasesAndOperators) {
  QueryProfile profile;
  auto result = RunSparql(store_, dict_,
                          "SELECT DISTINCT ?x WHERE { ?x <p2> ?y } "
                          "ORDER BY ?x LIMIT 5",
                          &profile);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(profile.kind, QueryKind::kSparql);
  EXPECT_GT(profile.parse_ns, 0u);
  EXPECT_EQ(profile.rows_out, 5u);
  // order_by, project, distinct, limit all ran.
  std::vector<std::string> names;
  for (const OperatorProfile& op : profile.operators) {
    names.emplace_back(op.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"order_by", "project",
                                             "distinct", "limit"}));
  // limit saw the 10 distinct subjects-of-p2... (100 rows, 10 distinct
  // after projection) and kept 5.
  EXPECT_EQ(profile.operators.back().rows_out, 5u);
}

TEST_F(QueryProfileTest, ExplainAnalyzeRendersActuals) {
  QueryProfile profile;
  auto report = ExplainAnalyzeSparql(
      store_, dict_, "SELECT ?x WHERE { ?x <p1> ?y . ?x <p2> ?z }",
      &profile);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.value().find("actual: probes="), std::string::npos);
  EXPECT_NE(report.value().find("q_error="), std::string::npos);
  EXPECT_NE(report.value().find("phases: parse="), std::string::npos);
  EXPECT_EQ(profile.rows_out, 1u);
}

TEST_F(QueryProfileTest, PathAndJoinOperatorsRecord) {
  Id p1 = dict_.Lookup(Term::Iri("p1"));
  Id p2 = dict_.Lookup(Term::Iri("p2"));
  QueryProfile path_profile;
  EvalPathHexastore(store_, {p2, p2}, &path_profile);
  EXPECT_EQ(path_profile.kind, QueryKind::kPath);
  ASSERT_EQ(path_profile.operators.size(), 2u);
  EXPECT_STREQ(path_profile.operators[0].name, "path_seed");
  EXPECT_STREQ(path_profile.operators[1].name, "path_join");
  EXPECT_EQ(path_profile.operators[0].rows_out, 100u);

  QueryProfile join_profile;
  JoinChain(store_, p1, p2, &join_profile);
  ASSERT_EQ(join_profile.operators.size(), 1u);
  EXPECT_STREQ(join_profile.operators[0].name, "join_chain");
  EXPECT_EQ(join_profile.total_ns, join_profile.eval_ns);
}

TEST_F(QueryProfileTest, SinkRecordsHistogramAndSlowLog) {
  obs::MetricsRegistry registry;
  ProfileSink sink(/*slow_threshold_ns=*/std::uint64_t{0});
  sink.RegisterWith(&registry);

  QueryProfile profile;
  auto result =
      RunSparql(store_, dict_, "SELECT ?x WHERE { ?x <p1> ?y }", &profile);
  ASSERT_TRUE(result.ok());
  sink.Record(profile, "SELECT ?x WHERE { ?x <p1> ?y }");

  // The sparql class histogram counted it...
  EXPECT_EQ(sink.histogram(QueryKind::kSparql)->Snapshot().count, 1u);
  EXPECT_EQ(sink.histogram(QueryKind::kBgp)->Snapshot().count, 0u);
  // ...and with threshold 0 the slow log captured it, text included.
  auto entries = sink.slow_queries().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, obs::kSlowQueryKindSparql);
  EXPECT_EQ(entries[0].rows_out, 1u);
  EXPECT_EQ(entries[0].patterns, 1u);
  EXPECT_EQ(entries[0].q_error_x1000, 1000u);  // q-error exactly 1
  EXPECT_EQ(entries[0].text, "SELECT ?x WHERE { ?x <p1> ?y }");

  // The registry JSON includes both the histograms and the slow log.
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("hexa_query_sparql_latency_ns"), std::string::npos);
  EXPECT_NE(json.find("\"slow_queries\": {"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"sparql\""), std::string::npos);
  registry.AttachSlowQueryLog(nullptr);  // detach before sink dies
}

TEST_F(QueryProfileTest, SinkThresholdFiltersFastQueries) {
  // An unreachable threshold keeps the ring empty but still counts the
  // query in its class histogram.
  ProfileSink sink(std::uint64_t{1} << 62);
  QueryProfile profile;
  auto result =
      RunSparql(store_, dict_, "SELECT ?x WHERE { ?x <p1> ?y }", &profile);
  ASSERT_TRUE(result.ok());
  sink.Record(profile, "q");
  EXPECT_EQ(sink.histogram(QueryKind::kSparql)->Snapshot().count, 1u);
  EXPECT_EQ(sink.slow_queries().TotalRecorded(), 0u);
}

TEST_F(QueryProfileTest, SlowQueryTextTruncates) {
  ProfileSink sink(std::uint64_t{0});
  QueryProfile profile;
  profile.kind = QueryKind::kBgp;
  profile.total_ns = 1;
  const std::string long_text(obs::kSlowQueryTextBytes + 100, 'q');
  sink.Record(profile, long_text);
  auto entries = sink.slow_queries().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].text.size(), obs::kSlowQueryTextBytes);
}

// -- Mid-delta q-error bound against the churn oracle ---------------------

TEST(QueryProfileDeltaTest, MidDeltaQErrorStaysBoundedOnUniformData) {
  // 100 p2 triples in the base, then stage 20 more plus tombstone 10:
  // the delta-aware EstimateMatches keeps per-pattern estimates within
  // the uniform-selectivity model, so the q-error of the single-pattern
  // query stays pinned at 1 (estimate == actual row count) even
  // mid-delta. The pinned evaluation also records a pin duration.
  Dictionary dict;
  DeltaHexastore store(/*compact_threshold=*/1u << 20);
  const Id p2 = dict.Intern(Term::Iri("p2"));
  auto node = [&](const std::string& prefix, int i) {
    return dict.Intern(Term::Iri(prefix + std::to_string(i)));
  };
  IdTripleVec base;
  for (int i = 0; i < 100; ++i) {
    base.push_back(IdTriple{node("s", i), p2, node("x", i % 10)});
  }
  std::sort(base.begin(), base.end());
  store.BulkLoad(base);
  for (int i = 0; i < 20; ++i) {
    store.Insert(IdTriple{node("t", i), p2, node("y", i)});
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Erase(base[static_cast<std::size_t>(i)]));
  }
  ASSERT_GT(store.StagedOps(), 0u);

  QueryProfile profile;
  ResultSet r =
      EvalBgpPinned(store, dict, {TP(V("s"), B("p2"), V("o"))}, &profile);
  EXPECT_EQ(r.rows.size(), 110u);  // churn oracle: 100 + 20 - 10
  ASSERT_EQ(profile.patterns.size(), 1u);
  EXPECT_EQ(profile.patterns[0].estimated, 110u);
  EXPECT_DOUBLE_EQ(profile.MaxQError(), 1.0);
  EXPECT_GT(profile.pin_ns, 0u);
  EXPECT_EQ(profile.total_ns, profile.parse_ns + profile.pin_ns);
}

}  // namespace
}  // namespace hexastore

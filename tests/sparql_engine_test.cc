// End-to-end tests for SPARQL-subset execution over the Graph facade.
#include <gtest/gtest.h>

#include "baseline/triple_table.h"
#include "core/graph.h"
#include "query/sparql_engine.h"

namespace hexastore {
namespace {

class SparqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(graph_
                    .LoadNTriples(
                        "<http://x/alice> "
                        "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
                        "<http://x/Person> .\n"
                        "<http://x/bob> "
                        "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
                        "<http://x/Person> .\n"
                        "<http://x/alice> <http://x/knows> <http://x/bob> "
                        ".\n"
                        "<http://x/bob> <http://x/knows> <http://x/carol> "
                        ".\n"
                        "<http://x/alice> <http://x/name> \"Alice\" .\n"
                        "<http://x/bob> <http://x/name> \"Bob\" .\n"
                        "<http://x/carol> <http://x/name> \"Carol\" .\n")
                    .ok());
  }

  ResultSet Run(const std::string& query) {
    auto r = RunSparql(graph_.store(), graph_.dict(), query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  Graph graph_;
};

TEST_F(SparqlEngineTest, SimpleSelect) {
  ResultSet r = Run("SELECT ?s WHERE { ?s a <http://x/Person> }");
  EXPECT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.vars.size(), 1u);
}

TEST_F(SparqlEngineTest, JoinAcrossPatterns) {
  ResultSet r = Run(
      "PREFIX x: <http://x/>\n"
      "SELECT ?n WHERE { x:alice x:knows ?b . ?b x:name ?n }");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(graph_.dict().term(r.rows[0][0]), Term::Literal("Bob"));
}

TEST_F(SparqlEngineTest, TwoHopChain) {
  ResultSet r = Run(
      "PREFIX x: <http://x/>\n"
      "SELECT ?c WHERE { x:alice x:knows ?b . ?b x:knows ?c }");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(graph_.dict().term(r.rows[0][0]), Term::Iri("http://x/carol"));
}

TEST_F(SparqlEngineTest, FilterNotEqual) {
  ResultSet r = Run(
      "PREFIX x: <http://x/>\n"
      "SELECT ?s WHERE { ?s x:name ?n . FILTER(?n != \"Bob\") }");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(SparqlEngineTest, FilterEqualConstant) {
  ResultSet r = Run(
      "PREFIX x: <http://x/>\n"
      "SELECT ?s WHERE { ?s x:name ?n . FILTER(?n = \"Carol\") }");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(graph_.dict().term(r.rows[0][0]), Term::Iri("http://x/carol"));
}

TEST_F(SparqlEngineTest, OrderByNameAndLimit) {
  ResultSet r = Run(
      "PREFIX x: <http://x/>\n"
      "SELECT ?n WHERE { ?s x:name ?n } ORDER BY ?n LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(graph_.dict().term(r.rows[0][0]), Term::Literal("Alice"));
  EXPECT_EQ(graph_.dict().term(r.rows[1][0]), Term::Literal("Bob"));
}

TEST_F(SparqlEngineTest, DistinctCollapses) {
  ResultSet r = Run(
      "PREFIX x: <http://x/>\n"
      "SELECT DISTINCT ?p WHERE { ?s ?p ?o . ?s a x:Person }");
  // alice and bob each contribute type/knows/name -> 3 distinct.
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(SparqlEngineTest, SelectStarKeepsAllVars) {
  ResultSet r = Run("SELECT * WHERE { ?s ?p ?o } LIMIT 3");
  EXPECT_EQ(r.vars.size(), 3u);
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(SparqlEngineTest, UnknownSelectVarIsError) {
  auto r = RunSparql(graph_.store(), graph_.dict(),
                     "SELECT ?zzz WHERE { ?s ?p ?o }");
  EXPECT_FALSE(r.ok());
}

TEST_F(SparqlEngineTest, ParseErrorPropagates) {
  auto r = RunSparql(graph_.store(), graph_.dict(), "SELEKT broken");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(SparqlEngineTest, WorksOverAnyStore) {
  // Same query over a triples table gives identical rows.
  TripleTableStore table;
  graph_.store().Scan(IdPattern{}, [&](const IdTriple& t) {
    table.Insert(t);
  });
  const std::string q =
      "PREFIX x: <http://x/>\n"
      "SELECT ?s ?n WHERE { ?s x:name ?n } ORDER BY ?n";
  auto r1 = RunSparql(graph_.store(), graph_.dict(), q);
  auto r2 = RunSparql(table, graph_.dict(), q);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().rows, r2.value().rows);
}

}  // namespace
}  // namespace hexastore

// Unit tests for util: Status/Result, string helpers, deterministic RNG,
// Zipf sampling, memory accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/common.h"
#include "util/memory_tracker.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace hexastore {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(RoleTest, Names) {
  EXPECT_STREQ(RoleName(Role::kSubject), "subject");
  EXPECT_STREQ(RoleName(Role::kPredicate), "predicate");
  EXPECT_STREQ(RoleName(Role::kObject), "object");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b  "), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t\n "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hexastore", "hexa"));
  EXPECT_FALSE(StartsWith("hex", "hexa"));
  EXPECT_TRUE(EndsWith("hexastore", "store"));
  EXPECT_FALSE(EndsWith("ore", "store"));
}

TEST(StringUtilTest, EscapeRoundTrip) {
  std::string raw = "line1\nline2\t\"quoted\" \\slash\r";
  std::string escaped = EscapeNTriplesLiteral(raw);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(UnescapeNTriplesLiteral(escaped), raw);
}

TEST(StringUtilTest, UnescapeKeepsUnknownEscapes) {
  EXPECT_EQ(UnescapeNTriplesLiteral("a\\qb"), "a\\qb");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, GoldenOutputIsStable) {
  // rng.h promises the same seed yields the same stream on every
  // platform; the synthetic Barton/LUBM datasets (and thus every figure
  // benchmark) depend on it. These values pin the current xoshiro256**
  // + splitmix64 implementation — if this test breaks, dataset
  // generation changed and all benchmark numbers stop being comparable.
  Rng raw(12345);
  const std::uint64_t kGoldenNext[] = {
      0xbe6a36374160d49bull, 0x214aaa0637a688c6ull, 0xf69d16de9954d388ull,
      0x0c60048c4e96e033ull, 0x8e2076aeed51c648ull,
  };
  for (std::uint64_t expected : kGoldenNext) {
    EXPECT_EQ(raw.Next(), expected);
  }

  Rng zero(0);
  EXPECT_EQ(zero.Next(), 0x99ec5f36cb75f2b4ull);

  // Rejection sampling makes Uniform part of the stable contract too.
  Rng uniform(12345);
  const std::uint64_t kGoldenUniform[] = {483, 998, 256, 395};
  for (std::uint64_t expected : kGoldenUniform) {
    EXPECT_EQ(uniform.Uniform(1000), expected);
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.UniformRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values should appear
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.2);
  double total = 0;
  for (std::size_t k = 0; k < zipf.size(); ++k) {
    total += zipf.Pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroIsMostLikely) {
  ZipfDistribution zipf(50, 1.0);
  for (std::size_t k = 1; k < zipf.size(); ++k) {
    EXPECT_GT(zipf.Pmf(0), zipf.Pmf(k));
  }
}

TEST(ZipfTest, SamplingMatchesPmf) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(21);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[zipf.Sample(&rng)];
  }
  // Head rank should occur close to its mass.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, zipf.Pmf(0), 0.02);
  // Monotone decreasing counts (with slack for sampling noise).
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[1], counts[9]);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfDistribution zipf(7, 2.0);
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 7u);
  }
}

TEST(MemoryTrackerTest, VectorHeapBytesTracksCapacity) {
  std::vector<std::uint64_t> v;
  EXPECT_EQ(VectorHeapBytes(v), 0u);
  v.reserve(10);
  EXPECT_EQ(VectorHeapBytes(v), 10 * sizeof(std::uint64_t));
}

TEST(MemoryTrackerTest, StringHeapBytesSso) {
  std::string small = "short";
  EXPECT_EQ(StringHeapBytes(small), 0u);
  std::string big(100, 'x');
  EXPECT_GE(StringHeapBytes(big), 100u);
}

TEST(MemoryTrackerTest, HashMapBytesGrowWithContent) {
  std::unordered_map<int, int> m;
  std::size_t empty = HashMapHeapBytes(m);
  for (int i = 0; i < 100; ++i) {
    m[i] = i;
  }
  EXPECT_GT(HashMapHeapBytes(m), empty);
}

}  // namespace
}  // namespace hexastore

// Unit and property tests for the core Hexastore: all eight access
// patterns, shared-list identities from paper §4.1, updates, bulk load,
// and the structural invariants.
#include <gtest/gtest.h>

#include <set>

#include "core/hexastore.h"
#include "util/rng.h"

namespace hexastore {
namespace {

IdTripleVec FigureOneData() {
  // Encodes the paper's Figure 1 example with small ids:
  // subjects ID1..ID4 = 1..4; properties: type=10, teacherOf=11,
  // bachelorFrom=12, mastersFrom=13, phdFrom=14, worksFor=15, advisor=16,
  // teachingAssist=17, takesCourse=18; objects: FullProfessor=20,
  // AI=21, MIT=22, Cambridge=23, Yale=24, AssocProfessor=25,
  // DataBases=26, Stanford=27, GradStudent=28, Princeton=29, Columbia=30.
  return {
      {1, 10, 20}, {1, 11, 21}, {1, 12, 22}, {1, 13, 23}, {1, 14, 24},
      {2, 10, 25}, {2, 15, 22}, {2, 11, 26}, {2, 12, 24}, {2, 14, 27},
      {3, 10, 28}, {3, 16, 2},  {3, 17, 21}, {3, 12, 27}, {3, 13, 29},
      {4, 10, 28}, {4, 16, 1},  {4, 18, 26}, {4, 12, 30},
  };
}

TEST(HexastoreTest, InsertAndContains) {
  Hexastore store;
  EXPECT_TRUE(store.Insert({1, 2, 3}));
  EXPECT_FALSE(store.Insert({1, 2, 3}));
  EXPECT_TRUE(store.Contains({1, 2, 3}));
  EXPECT_FALSE(store.Contains({1, 2, 4}));
  EXPECT_EQ(store.size(), 1u);
}

TEST(HexastoreTest, EraseRemovesEverywhere) {
  Hexastore store;
  store.Insert({1, 2, 3});
  EXPECT_TRUE(store.Erase({1, 2, 3}));
  EXPECT_FALSE(store.Erase({1, 2, 3}));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.objects(1, 2), nullptr);
  EXPECT_EQ(store.predicates(1, 3), nullptr);
  EXPECT_EQ(store.subjects(2, 3), nullptr);
  EXPECT_EQ(store.predicates_of_subject(1), nullptr);
  EXPECT_EQ(store.subjects_of_object(3), nullptr);
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(HexastoreTest, EraseKeepsSiblingData) {
  Hexastore store;
  store.Insert({1, 2, 3});
  store.Insert({1, 2, 4});
  store.Insert({1, 5, 3});
  store.Erase({1, 2, 3});
  EXPECT_TRUE(store.Contains({1, 2, 4}));
  EXPECT_TRUE(store.Contains({1, 5, 3}));
  // (1,2) pair still exists because o(1,2) still holds 4.
  ASSERT_NE(store.objects(1, 2), nullptr);
  EXPECT_EQ(*store.objects(1, 2), (IdVec{4}));
  // p(1,3) now only contains 5.
  ASSERT_NE(store.predicates(1, 3), nullptr);
  EXPECT_EQ(*store.predicates(1, 3), (IdVec{5}));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(HexastoreTest, SharedListIdentities) {
  // Paper §4.1: op_y(s_x) == os_x(p_y) etc. Our pool makes them literally
  // the same object; check pointer equality through the accessors.
  Hexastore store;
  store.BulkLoad(FigureOneData());
  // o(s=2, p=12) reachable from both spo and pso sides is one list.
  const IdVec* o1 = store.objects(2, 12);
  ASSERT_NE(o1, nullptr);
  EXPECT_EQ(*o1, (IdVec{24}));
  // p(s=3, o=27): properties relating ID3 to Stanford = {bachelorFrom}.
  const IdVec* p1 = store.predicates(3, 27);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(*p1, (IdVec{12}));
  // s(p=14, o=27): subjects with phdFrom Stanford = {ID2}.
  const IdVec* s1 = store.subjects(14, 27);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(*s1, (IdVec{2}));
}

TEST(HexastoreTest, PaperOpsExample) {
  // Paper §4.1: "the ops indexing for the data in Figure 1 includes a
  // property vector for the object 'MIT'. This property vector contains
  // two property entries, namely bachelorFrom and worksFor", with subject
  // lists {ID1} and {ID2}.
  Hexastore store;
  store.BulkLoad(FigureOneData());
  const Id mit = 22;
  const IdVec* props = store.predicates_of_object(mit);
  ASSERT_NE(props, nullptr);
  EXPECT_EQ(*props, (IdVec{12, 15}));  // bachelorFrom, worksFor
  EXPECT_EQ(*store.subjects(12, mit), (IdVec{1}));
  EXPECT_EQ(*store.subjects(15, mit), (IdVec{2}));

  // "the osp indexing includes a subject vector for 'Stanford' ... two
  // subject entries, ID2 and ID3 ... lists contain phdFrom and
  // bachelorFrom respectively."
  const Id stanford = 27;
  const IdVec* subs = store.subjects_of_object(stanford);
  ASSERT_NE(subs, nullptr);
  EXPECT_EQ(*subs, (IdVec{2, 3}));
  EXPECT_EQ(*store.predicates(2, stanford), (IdVec{14}));
  EXPECT_EQ(*store.predicates(3, stanford), (IdVec{12}));
}

TEST(HexastoreTest, ScanFullyBound) {
  Hexastore store;
  store.Insert({1, 2, 3});
  EXPECT_EQ(store.Match({1, 2, 3}), (IdTripleVec{{1, 2, 3}}));
  EXPECT_TRUE(store.Match({1, 2, 4}).empty());
}

TEST(HexastoreTest, ScanAllEightPatterns) {
  Hexastore store;
  store.BulkLoad(FigureOneData());
  const IdTripleVec all = store.Match(IdPattern{});
  EXPECT_EQ(all.size(), FigureOneData().size());

  // (s,p,?): ID1 bachelorFrom -> MIT.
  EXPECT_EQ(store.Match({1, 12, kInvalidId}), (IdTripleVec{{1, 12, 22}}));
  // (s,?,o): ID2 ? MIT -> worksFor.
  EXPECT_EQ(store.Match({2, kInvalidId, 22}), (IdTripleVec{{2, 15, 22}}));
  // (?,p,o): ? type GradStudent -> ID3, ID4.
  EXPECT_EQ(store.Match({kInvalidId, 10, 28}),
            (IdTripleVec{{3, 10, 28}, {4, 10, 28}}));
  // (s,?,?): all five ID1 triples.
  EXPECT_EQ(store.Match({1, kInvalidId, kInvalidId}).size(), 5u);
  // (?,p,?): all four type triples.
  EXPECT_EQ(store.Match({kInvalidId, 10, kInvalidId}).size(), 4u);
  // (?,?,o): everything relating to MIT.
  EXPECT_EQ(store.Match({kInvalidId, kInvalidId, 22}),
            (IdTripleVec{{1, 12, 22}, {2, 15, 22}}));
}

TEST(HexastoreTest, VectorAccessorsAreSorted) {
  Hexastore store;
  store.BulkLoad(FigureOneData());
  for (Id s = 1; s <= 4; ++s) {
    const IdVec* ps = store.predicates_of_subject(s);
    ASSERT_NE(ps, nullptr);
    EXPECT_TRUE(IsStrictlySorted(*ps));
    const IdVec* os = store.objects_of_subject(s);
    ASSERT_NE(os, nullptr);
    EXPECT_TRUE(IsStrictlySorted(*os));
  }
  EXPECT_TRUE(IsStrictlySorted(*store.subjects_of_predicate(10)));
  EXPECT_TRUE(IsStrictlySorted(*store.objects_of_predicate(10)));
}

TEST(HexastoreTest, BulkLoadEqualsIncremental) {
  IdTripleVec data = FigureOneData();
  // Duplicate some rows: bulk load must dedupe.
  data.push_back(data[0]);
  data.push_back(data[5]);

  Hexastore bulk;
  bulk.BulkLoad(data);
  Hexastore inc;
  for (const auto& t : data) {
    inc.Insert(t);
  }
  EXPECT_EQ(bulk.size(), inc.size());
  EXPECT_EQ(bulk.Match(IdPattern{}), inc.Match(IdPattern{}));
  std::string err;
  EXPECT_TRUE(bulk.CheckInvariants(&err)) << err;
  EXPECT_TRUE(inc.CheckInvariants(&err)) << err;
}

// Regression: BulkLoad into a NON-empty store must merge the batch with
// the existing contents and dedup against them, not just within the
// batch. The DeltaHexastore compaction drain depends on this.
TEST(HexastoreTest, BulkLoadIntoNonEmptyStoreMergesAndDedups) {
  Hexastore store;
  std::set<IdTriple> oracle;
  for (Id s = 1; s <= 6; ++s) {
    for (Id p = 1; p <= 3; ++p) {
      IdTriple t{s, p, s + p};
      store.Insert(t);
      oracle.insert(t);
    }
  }
  IdTripleVec batch;
  batch.push_back({1, 1, 2});    // duplicate of an existing triple
  batch.push_back({9, 9, 9});    // brand new
  batch.push_back({9, 9, 9});    // duplicate within the batch
  batch.push_back({1, 1, 99});   // extends an existing o(s,p) list
  batch.push_back({1, 1, 1});    // sorts before existing list content
  for (const auto& t : batch) {
    oracle.insert(t);
  }
  store.BulkLoad(batch);
  EXPECT_EQ(store.size(), oracle.size());
  EXPECT_EQ(store.Match(IdPattern{}),
            IdTripleVec(oracle.begin(), oracle.end()));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

// Repeated non-empty bulk loads with overlap behave like one big load.
TEST(HexastoreTest, ChainedBulkLoadsEqualSingleLoad) {
  Rng rng(0xb17c);
  IdTripleVec all;
  Hexastore chained;
  for (int round = 0; round < 5; ++round) {
    IdTripleVec batch;
    for (int i = 0; i < 200; ++i) {
      batch.push_back(IdTriple{1 + rng.Uniform(20), 1 + rng.Uniform(6),
                               1 + rng.Uniform(20)});
    }
    chained.BulkLoad(batch);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  Hexastore once;
  once.BulkLoad(all);
  EXPECT_EQ(chained.size(), once.size());
  EXPECT_EQ(chained.Match(IdPattern{}), once.Match(IdPattern{}));
  std::string err;
  EXPECT_TRUE(chained.CheckInvariants(&err)) << err;
}

TEST(HexastoreTest, BulkLoadEmptyBatchIsNoOp) {
  Hexastore store;
  store.Insert({1, 2, 3});
  store.BulkLoad({});
  EXPECT_EQ(store.size(), 1u);
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(HexastoreTest, ClearResets) {
  Hexastore store;
  store.BulkLoad(FigureOneData());
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Match(IdPattern{}).empty());
  EXPECT_TRUE(store.Insert({1, 2, 3}));
}

TEST(HexastoreTest, CountAndExists) {
  Hexastore store;
  store.BulkLoad(FigureOneData());
  EXPECT_EQ(store.CountMatches({kInvalidId, 10, kInvalidId}), 4u);
  EXPECT_TRUE(store.MatchesAny({kInvalidId, 10, 28}));
  EXPECT_FALSE(store.MatchesAny({kInvalidId, 10, 99}));
}

TEST(HexastoreTest, StatsCountsKeyEntries) {
  Hexastore store;
  store.Insert({1, 2, 3});
  MemoryStats stats = store.Stats();
  // A single triple with three unique resources: 6 headers + 6 vector
  // entries + 3 terminal entries = 15 key entries (the 5x bound: 15 = 5*3).
  EXPECT_EQ(stats.key_entries, 15u);
  EXPECT_GT(stats.Total(), 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(HexastoreTest, MemoryBytesMatchesStatsTotal) {
  Hexastore store;
  store.BulkLoad(FigureOneData());
  EXPECT_EQ(store.MemoryBytes(), store.Stats().Total());
}

TEST(HexastoreTest, NameIsHexastore) {
  Hexastore store;
  EXPECT_EQ(store.name(), "Hexastore");
}

TEST(HexastoreTest, DistinctCounts) {
  Hexastore store;
  store.BulkLoad(FigureOneData());
  EXPECT_EQ(store.DistinctSubjects(), 4u);   // ID1..ID4
  EXPECT_EQ(store.DistinctPredicates(), 9u);
  // Objects: 20,21,22,23,24,25,26,27,28,29,30 plus ID1 and ID2 (advisor
  // targets) = 13.
  EXPECT_EQ(store.DistinctObjects(), 13u);
}

TEST(HexastoreTest, BulkLoadOntoExistingData) {
  Hexastore store;
  store.Insert({1, 2, 3});
  store.Insert({4, 5, 6});
  // Bulk load overlapping data on top of the incremental inserts.
  store.BulkLoad({{1, 2, 3}, {7, 8, 9}, {1, 2, 4}});
  EXPECT_EQ(store.size(), 4u);
  EXPECT_TRUE(store.Contains({1, 2, 3}));
  EXPECT_TRUE(store.Contains({4, 5, 6}));
  EXPECT_TRUE(store.Contains({7, 8, 9}));
  EXPECT_TRUE(store.Contains({1, 2, 4}));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(HexastoreTest, BulkLoadDeduplicatesWithinBatch) {
  Hexastore store;
  // The same triple repeated in one batch must count once everywhere.
  store.BulkLoad({{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {4, 2, 3}, {4, 2, 3}});
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.objects(1, 2), nullptr);
  EXPECT_EQ(store.objects(1, 2)->size(), 1u);
  ASSERT_NE(store.subjects(2, 3), nullptr);
  EXPECT_EQ((*store.subjects(2, 3)), (IdVec{1, 4}));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(HexastoreTest, EraseAfterBulkLoadKeepsInvariants) {
  Hexastore store;
  store.BulkLoad(FigureOneData());
  const std::size_t initial = store.size();
  EXPECT_TRUE(store.Erase({1, 10, 20}));
  EXPECT_FALSE(store.Erase({1, 10, 20}));  // already gone
  EXPECT_TRUE(store.Erase({3, 16, 2}));
  EXPECT_EQ(store.size(), initial - 2);
  EXPECT_FALSE(store.Contains({1, 10, 20}));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
  // And bulk-loading the erased triples back restores them exactly once.
  store.BulkLoad({{1, 10, 20}, {3, 16, 2}});
  EXPECT_EQ(store.size(), initial);
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

// ---- Randomized property tests ------------------------------------------

class HexastorePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HexastorePropertyTest, RandomMutationsKeepInvariants) {
  Rng rng(GetParam());
  Hexastore store;
  std::set<IdTriple> ref;
  for (int i = 0; i < 3000; ++i) {
    IdTriple t{1 + rng.Uniform(12), 1 + rng.Uniform(6), 1 + rng.Uniform(12)};
    if (rng.Bernoulli(0.65)) {
      EXPECT_EQ(store.Insert(t), ref.insert(t).second);
    } else {
      EXPECT_EQ(store.Erase(t), ref.erase(t) > 0);
    }
  }
  EXPECT_EQ(store.size(), ref.size());
  EXPECT_EQ(store.Match(IdPattern{}), IdTripleVec(ref.begin(), ref.end()));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST_P(HexastorePropertyTest, ScanMatchesFilteredReference) {
  Rng rng(GetParam() ^ 0xfeed);
  Hexastore store;
  std::set<IdTriple> ref;
  for (int i = 0; i < 800; ++i) {
    IdTriple t{1 + rng.Uniform(9), 1 + rng.Uniform(5), 1 + rng.Uniform(9)};
    store.Insert(t);
    ref.insert(t);
  }
  // All 8 bound/unbound shapes, several random probes each.
  for (int mask = 0; mask < 8; ++mask) {
    for (int probe = 0; probe < 20; ++probe) {
      IdPattern q;
      if (mask & 1) q.s = 1 + rng.Uniform(10);
      if (mask & 2) q.p = 1 + rng.Uniform(6);
      if (mask & 4) q.o = 1 + rng.Uniform(10);
      IdTripleVec expect;
      for (const auto& t : ref) {
        if (q.Matches(t)) {
          expect.push_back(t);
        }
      }
      EXPECT_EQ(store.Match(q), expect)
          << "mask=" << mask << " s=" << q.s << " p=" << q.p
          << " o=" << q.o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HexastorePropertyTest,
                         ::testing::Values(3, 17, 2718, 31415));

}  // namespace
}  // namespace hexastore

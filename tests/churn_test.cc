// Cross-index consistency under churn: a randomized interleaved
// Insert/Erase/Clear sequence must keep all six permutation indexes in
// agreement (Hexastore::CheckInvariants) and in lock-step with a
// std::set<IdTriple> oracle. The same oracle churn also runs against
// DeltaHexastore with a tiny compaction threshold, so every batch crosses
// several staged/part-drained/freshly-compacted states.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/hexastore.h"
#include "delta/delta_hexastore.h"
#include "rdf/triple.h"
#include "util/rng.h"

namespace hexastore {
namespace {

// Draws a triple from a small id universe so that Erase hits existing
// triples often and vectors/headers repeatedly empty out and reappear.
IdTriple RandomTriple(Rng& rng, Id universe) {
  return IdTriple{rng.UniformRange(1, universe), rng.UniformRange(1, universe),
                  rng.UniformRange(1, universe)};
}

// Full materialization of the store via an unbound scan, sorted. Works
// for any store exposing Scan/size/CheckInvariants (Hexastore and
// DeltaHexastore both do).
template <typename StoreT>
IdTripleVec ScanAll(const StoreT& store) {
  IdTripleVec out;
  store.Scan(IdPattern{}, [&out](const IdTriple& t) { out.push_back(t); });
  std::sort(out.begin(), out.end());
  return out;
}

template <typename StoreT>
void ExpectAgreesWithOracle(const StoreT& store,
                            const std::set<IdTriple>& oracle) {
  ASSERT_EQ(store.size(), oracle.size());
  IdTripleVec scanned = ScanAll(store);
  IdTripleVec expected(oracle.begin(), oracle.end());
  ASSERT_EQ(scanned, expected);
  std::string err;
  ASSERT_TRUE(store.CheckInvariants(&err)) << err;
}

TEST(ChurnTest, RandomizedInsertEraseClearAgreesWithOracle) {
  Rng rng(0xC0FFEE);
  Hexastore store;
  std::set<IdTriple> oracle;

  constexpr Id kUniverse = 12;  // small: heavy collisions by design
  constexpr int kBatches = 60;
  constexpr int kOpsPerBatch = 50;

  for (int batch = 0; batch < kBatches; ++batch) {
    for (int op = 0; op < kOpsPerBatch; ++op) {
      double dice = rng.NextDouble();
      if (dice < 0.55) {
        IdTriple t = RandomTriple(rng, kUniverse);
        EXPECT_EQ(store.Insert(t), oracle.insert(t).second);
      } else if (dice < 0.98) {
        // Half the erases target known-present triples so the store
        // actually shrinks; the rest probe (often absent) random ones.
        IdTriple t;
        if (!oracle.empty() && rng.Bernoulli(0.5)) {
          auto it = oracle.begin();
          std::advance(it, rng.Uniform(oracle.size()));
          t = *it;
        } else {
          t = RandomTriple(rng, kUniverse);
        }
        EXPECT_EQ(store.Erase(t), oracle.erase(t) > 0);
      } else {
        store.Clear();
        oracle.clear();
      }
    }
    ASSERT_NO_FATAL_FAILURE(ExpectAgreesWithOracle(store, oracle))
        << "after batch " << batch;
  }
}

TEST(ChurnTest, ContainsMatchesOracleThroughoutChurn) {
  Rng rng(42);
  Hexastore store;
  std::set<IdTriple> oracle;

  constexpr Id kUniverse = 6;  // tiny universe: probe the whole cube
  for (int round = 0; round < 20; ++round) {
    for (int op = 0; op < 30; ++op) {
      IdTriple t = RandomTriple(rng, kUniverse);
      if (rng.Bernoulli(0.5)) {
        EXPECT_EQ(store.Insert(t), oracle.insert(t).second);
      } else {
        EXPECT_EQ(store.Erase(t), oracle.erase(t) > 0);
      }
    }
    for (Id s = 1; s <= kUniverse; ++s) {
      for (Id p = 1; p <= kUniverse; ++p) {
        for (Id o = 1; o <= kUniverse; ++o) {
          IdTriple t{s, p, o};
          ASSERT_EQ(store.Contains(t), oracle.count(t) > 0)
              << "round " << round << " triple (" << s << "," << p << "," << o
              << ")";
        }
      }
    }
    std::string err;
    ASSERT_TRUE(store.CheckInvariants(&err)) << err;
  }
}

TEST(DeltaChurnTest, RandomizedInsertEraseClearAgreesWithOracle) {
  Rng rng(0xC0FFEE);
  // Threshold far below ops-per-batch: every batch straddles several
  // compactions, so the oracle checks hit mid-compaction states.
  DeltaHexastore store(/*compact_threshold=*/32);
  std::set<IdTriple> oracle;

  constexpr Id kUniverse = 12;
  constexpr int kBatches = 60;
  constexpr int kOpsPerBatch = 50;

  for (int batch = 0; batch < kBatches; ++batch) {
    for (int op = 0; op < kOpsPerBatch; ++op) {
      double dice = rng.NextDouble();
      if (dice < 0.55) {
        IdTriple t = RandomTriple(rng, kUniverse);
        EXPECT_EQ(store.Insert(t), oracle.insert(t).second);
      } else if (dice < 0.98) {
        IdTriple t;
        if (!oracle.empty() && rng.Bernoulli(0.5)) {
          auto it = oracle.begin();
          std::advance(it, rng.Uniform(oracle.size()));
          t = *it;
        } else {
          t = RandomTriple(rng, kUniverse);
        }
        EXPECT_EQ(store.Erase(t), oracle.erase(t) > 0);
      } else {
        store.Clear();
        oracle.clear();
      }
    }
    ASSERT_NO_FATAL_FAILURE(ExpectAgreesWithOracle(store, oracle))
        << "after batch " << batch;
  }
  EXPECT_GT(store.CompactionCount(), 0u);
}

TEST(DeltaChurnTest, ContainsMatchesOracleThroughoutChurn) {
  Rng rng(42);
  DeltaHexastore store(/*compact_threshold=*/16);
  std::set<IdTriple> oracle;

  constexpr Id kUniverse = 6;
  for (int round = 0; round < 20; ++round) {
    for (int op = 0; op < 30; ++op) {
      IdTriple t = RandomTriple(rng, kUniverse);
      if (rng.Bernoulli(0.5)) {
        EXPECT_EQ(store.Insert(t), oracle.insert(t).second);
      } else {
        EXPECT_EQ(store.Erase(t), oracle.erase(t) > 0);
      }
    }
    for (Id s = 1; s <= kUniverse; ++s) {
      for (Id p = 1; p <= kUniverse; ++p) {
        for (Id o = 1; o <= kUniverse; ++o) {
          IdTriple t{s, p, o};
          ASSERT_EQ(store.Contains(t), oracle.count(t) > 0)
              << "round " << round << " triple (" << s << "," << p << ","
              << o << ")";
        }
      }
    }
    std::string err;
    ASSERT_TRUE(store.CheckInvariants(&err)) << err;
  }
}

TEST(DeltaChurnTest, ErasePatternAgreesWithOracle) {
  Rng rng(0xEA5E);
  // Tiny threshold: pattern tombstones repeatedly cross compactions.
  DeltaHexastore store(/*compact_threshold=*/24);
  std::set<IdTriple> oracle;

  constexpr Id kUniverse = 10;
  constexpr int kBatches = 40;
  constexpr int kOpsPerBatch = 40;

  auto oracle_erase_pattern = [&oracle](const IdPattern& q) {
    std::size_t erased = 0;
    for (auto it = oracle.begin(); it != oracle.end();) {
      if (q.Matches(*it)) {
        it = oracle.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  };

  for (int batch = 0; batch < kBatches; ++batch) {
    for (int op = 0; op < kOpsPerBatch; ++op) {
      const double dice = rng.NextDouble();
      if (dice < 0.60) {
        IdTriple t = RandomTriple(rng, kUniverse);
        EXPECT_EQ(store.Insert(t), oracle.insert(t).second);
      } else if (dice < 0.80) {
        IdTriple t = RandomTriple(rng, kUniverse);
        EXPECT_EQ(store.Erase(t), oracle.erase(t) > 0);
      } else if (dice < 0.92) {
        // Predicate-only: the pattern-tombstone fast path.
        const IdPattern q{0, rng.UniformRange(1, kUniverse), 0};
        EXPECT_EQ(store.ErasePattern(q), oracle_erase_pattern(q));
      } else if (dice < 0.97) {
        // Other shapes exercise the point-tombstone fallback.
        IdPattern q;
        if (rng.Bernoulli(0.5)) {
          q.s = rng.UniformRange(1, kUniverse);
        } else {
          q.o = rng.UniformRange(1, kUniverse);
          if (rng.Bernoulli(0.4)) {
            q.p = rng.UniformRange(1, kUniverse);
          }
        }
        EXPECT_EQ(store.ErasePattern(q), oracle_erase_pattern(q));
      } else {
        // All-wildcard == Clear.
        EXPECT_EQ(store.ErasePattern(IdPattern{}), oracle.size());
        oracle.clear();
      }
    }
    ASSERT_NO_FATAL_FAILURE(ExpectAgreesWithOracle(store, oracle))
        << "after batch " << batch;
  }
  EXPECT_GT(store.CompactionCount(), 0u);
}

TEST(DeltaChurnTest, ErasePatternMergedViewsAgreeMidDelta) {
  // Pin the merged accessor views (lists + header vectors) against a
  // brute-force oracle while pattern tombstones are live (no compaction).
  Rng rng(0x9A77E12);
  DeltaHexastore store(/*compact_threshold=*/1u << 20);
  std::set<IdTriple> oracle;
  constexpr Id kUniverse = 6;
  for (int i = 0; i < 150; ++i) {
    IdTriple t = RandomTriple(rng, kUniverse);
    store.Insert(t);
    oracle.insert(t);
  }
  store.Compact();  // everything into the base
  for (int i = 0; i < 60; ++i) {  // fresh staged layer on top
    IdTriple t = RandomTriple(rng, kUniverse);
    if (rng.Bernoulli(0.6)) {
      if (store.Insert(t)) {
        oracle.insert(t);
      }
    } else {
      store.Erase(t);
      oracle.erase(t);
    }
  }
  const Id erased_p = 3;
  const IdPattern q{0, erased_p, 0};
  std::size_t expected_erased = 0;
  for (auto it = oracle.begin(); it != oracle.end();) {
    it = q.Matches(*it) ? (++expected_erased, oracle.erase(it)) : ++it;
  }
  EXPECT_EQ(store.ErasePattern(q), expected_erased);
  // Re-insert one pattern-erased triple: it must resurface everywhere.
  const IdTriple revived{1, erased_p, 1};
  EXPECT_TRUE(store.Insert(revived));
  oracle.insert(revived);

  ASSERT_NO_FATAL_FAILURE(ExpectAgreesWithOracle(store, oracle));
  for (Id a = 1; a <= kUniverse; ++a) {
    for (Id b = 1; b <= kUniverse; ++b) {
      IdVec objects_oracle;
      IdVec predicates_oracle;
      IdVec subjects_oracle;
      for (const IdTriple& t : oracle) {
        if (t.s == a && t.p == b) objects_oracle.push_back(t.o);
        if (t.s == a && t.o == b) predicates_oracle.push_back(t.p);
        if (t.p == a && t.o == b) subjects_oracle.push_back(t.s);
      }
      EXPECT_EQ(store.objects(a, b).Materialize(), objects_oracle)
          << "o(" << a << "," << b << ")";
      EXPECT_EQ(store.predicates(a, b).Materialize(), predicates_oracle)
          << "p(" << a << "," << b << ")";
      EXPECT_EQ(store.subjects(a, b).Materialize(), subjects_oracle)
          << "s(" << a << "," << b << ")";
    }
    IdVec ps_oracle, os_oracle, sp_oracle, op_oracle, so_oracle, po_oracle;
    for (const IdTriple& t : oracle) {
      if (t.s == a) SortedInsert(&ps_oracle, t.p);
      if (t.s == a) SortedInsert(&os_oracle, t.o);
      if (t.p == a) SortedInsert(&sp_oracle, t.s);
      if (t.p == a) SortedInsert(&op_oracle, t.o);
      if (t.o == a) SortedInsert(&so_oracle, t.s);
      if (t.o == a) SortedInsert(&po_oracle, t.p);
    }
    EXPECT_EQ(store.predicates_of_subject(a), ps_oracle) << "p(s=" << a << ")";
    EXPECT_EQ(store.objects_of_subject(a), os_oracle) << "o(s=" << a << ")";
    EXPECT_EQ(store.subjects_of_predicate(a), sp_oracle) << "s(p=" << a << ")";
    EXPECT_EQ(store.objects_of_predicate(a), op_oracle) << "o(p=" << a << ")";
    EXPECT_EQ(store.subjects_of_object(a), so_oracle) << "s(o=" << a << ")";
    EXPECT_EQ(store.predicates_of_object(a), po_oracle) << "p(o=" << a << ")";
  }
  // And after compaction the views stay identical.
  store.Compact();
  ASSERT_NO_FATAL_FAILURE(ExpectAgreesWithOracle(store, oracle));
}

TEST(DeltaChurnTest, SnapshotStaysStableWhileChurnContinues) {
  Rng rng(0x5a5a);
  DeltaHexastore store(/*compact_threshold=*/24);
  std::set<IdTriple> oracle;
  for (int i = 0; i < 100; ++i) {
    IdTriple t = RandomTriple(rng, 10);
    store.Insert(t);
    oracle.insert(t);
  }
  DeltaHexastore::Snapshot snap = store.GetSnapshot();
  const IdTripleVec frozen(oracle.begin(), oracle.end());
  ASSERT_EQ(snap.Match(IdPattern{}), frozen);
  // Churn on, crossing several compactions and a Clear.
  for (int i = 0; i < 400; ++i) {
    IdTriple t = RandomTriple(rng, 10);
    if (rng.Bernoulli(0.5)) {
      store.Insert(t);
    } else {
      store.Erase(t);
    }
    if (i == 250) {
      store.Clear();
    }
  }
  // The snapshot still serves the frozen view.
  EXPECT_EQ(snap.Match(IdPattern{}), frozen);
  EXPECT_EQ(snap.size(), frozen.size());
}

// The churn oracle pointed at the leveled configuration: a small
// threshold and run limit with an aggressive L1→base fraction, so every
// few batches cross seals, L0→L1 folds AND L1→base merges — the oracle
// checks hit every intermediate level shape, including pattern
// tombstones sealed above matching triples in lower runs.
TEST(LeveledChurnTest, RandomizedChurnAgreesWithOracleAcrossLevelMerges) {
  Rng rng(0x1E7E1ED);
  DeltaOptions options;
  options.compact_threshold = 16;
  options.l0_run_limit = 3;
  options.l1_base_fraction = 0.05;  // base merges actually happen
  DeltaHexastore store(options);
  std::set<IdTriple> oracle;

  constexpr Id kUniverse = 10;
  constexpr int kBatches = 50;
  constexpr int kOpsPerBatch = 40;

  auto oracle_erase_pattern = [&oracle](const IdPattern& q) {
    std::size_t erased = 0;
    for (auto it = oracle.begin(); it != oracle.end();) {
      if (q.Matches(*it)) {
        it = oracle.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  };

  for (int batch = 0; batch < kBatches; ++batch) {
    for (int op = 0; op < kOpsPerBatch; ++op) {
      const double dice = rng.NextDouble();
      if (dice < 0.58) {
        IdTriple t = RandomTriple(rng, kUniverse);
        EXPECT_EQ(store.Insert(t), oracle.insert(t).second);
      } else if (dice < 0.88) {
        IdTriple t;
        if (!oracle.empty() && rng.Bernoulli(0.5)) {
          auto it = oracle.begin();
          std::advance(it, rng.Uniform(oracle.size()));
          t = *it;
        } else {
          t = RandomTriple(rng, kUniverse);
        }
        EXPECT_EQ(store.Erase(t), oracle.erase(t) > 0);
      } else if (dice < 0.94) {
        // Predicate-only: the leveled pattern-tombstone fast path
        // (counts by merged scan, drains nothing).
        const IdPattern q{0, rng.UniformRange(1, kUniverse), 0};
        EXPECT_EQ(store.ErasePattern(q), oracle_erase_pattern(q));
      } else if (dice < 0.97) {
        IdPattern q;
        q.s = rng.UniformRange(1, kUniverse);
        EXPECT_EQ(store.ErasePattern(q), oracle_erase_pattern(q));
      } else if (dice < 0.99) {
        store.Compact();  // forced full drain of the hierarchy
      } else {
        store.Clear();
        oracle.clear();
      }
    }
    ASSERT_NO_FATAL_FAILURE(ExpectAgreesWithOracle(store, oracle))
        << "after batch " << batch;
  }
  const DeltaStats stats = store.Stats();
  EXPECT_GT(stats.seals, 0u);
  EXPECT_GT(stats.l0_merges, 0u);
  EXPECT_GT(stats.base_merges, 0u);
}

// The leveled churn oracle with prefix filters armed and a hard memory
// budget tight enough that budget pressure (not l0_run_limit) drives
// folds: reads must stay oracle-exact through filter skips, and the
// teardown must return every tracked byte — the regression guard for
// the deferred-reclaim accounting drift.
TEST(LeveledChurnTest, FilteredChurnUnderMemoryBudgetAgreesWithOracle) {
  Rng rng(0xB0D9E7);
  DeltaOptions options;
  options.compact_threshold = 16;
  options.l0_run_limit = 3;
  options.l1_base_fraction = 0.05;
  options.filter_bits_per_key = 10;
  // Far below what the run tables + filters occupy, so budget triggers
  // fire constantly; the CI smoke job overrides it via HEXA_MEM_BUDGET.
  options.memory_budget_bytes = 4096;
  if (const char* env = std::getenv("HEXA_MEM_BUDGET")) {
    if (*env != '\0') {
      options.memory_budget_bytes =
          static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
  }

  std::shared_ptr<MemoryTracker> tracker;
  {
    DeltaHexastore store(options);
    tracker = store.memory_tracker();
    std::set<IdTriple> oracle;

    constexpr Id kUniverse = 10;
    constexpr int kBatches = 40;
    constexpr int kOpsPerBatch = 40;

    auto oracle_erase_pattern = [&oracle](const IdPattern& q) {
      std::size_t erased = 0;
      for (auto it = oracle.begin(); it != oracle.end();) {
        if (q.Matches(*it)) {
          it = oracle.erase(it);
          ++erased;
        } else {
          ++it;
        }
      }
      return erased;
    };

    for (int batch = 0; batch < kBatches; ++batch) {
      for (int op = 0; op < kOpsPerBatch; ++op) {
        const double dice = rng.NextDouble();
        if (dice < 0.58) {
          IdTriple t = RandomTriple(rng, kUniverse);
          EXPECT_EQ(store.Insert(t), oracle.insert(t).second);
        } else if (dice < 0.88) {
          IdTriple t;
          if (!oracle.empty() && rng.Bernoulli(0.5)) {
            auto it = oracle.begin();
            std::advance(it, rng.Uniform(oracle.size()));
            t = *it;
          } else {
            t = RandomTriple(rng, kUniverse);
          }
          EXPECT_EQ(store.Erase(t), oracle.erase(t) > 0);
        } else if (dice < 0.94) {
          const IdPattern q{0, rng.UniformRange(1, kUniverse), 0};
          EXPECT_EQ(store.ErasePattern(q), oracle_erase_pattern(q));
        } else if (dice < 0.97) {
          // Point probes against (mostly absent) distant keys drive the
          // filter skip counters.
          const IdTriple far{rng.UniformRange(100, 200),
                             rng.UniformRange(100, 200),
                             rng.UniformRange(100, 200)};
          EXPECT_EQ(store.Contains(far), oracle.count(far) > 0);
        } else {
          // A snapshot pinning a generation mid-churn: superseded runs
          // must still return their bytes when it dies.
          DeltaHexastore::Snapshot snap = store.GetSnapshot();
          EXPECT_EQ(snap.size(), oracle.size());
        }
      }
      ASSERT_NO_FATAL_FAILURE(ExpectAgreesWithOracle(store, oracle))
          << "after batch " << batch;
    }
    const DeltaStats stats = store.Stats();
    EXPECT_GT(stats.seals, 0u);
    // Either the filters answered probes, or the budget was so tight
    // the store (correctly) dropped every one of them.
    EXPECT_GT(stats.filter_probes + stats.filters_dropped, 0u);
    if (stats.filter_probes > 0) {
      EXPECT_GT(stats.filter_skips, 0u);
    }
    EXPECT_GT(stats.resident_bytes, 0u);
    EXPECT_EQ(stats.memory_budget_bytes, options.memory_budget_bytes);
    // The whole point of the budget: merges fire because memory crossed
    // the line, not because l0_run_limit filled up. Only asserted for
    // budgets this small workload actually exceeds — a generous
    // HEXA_MEM_BUDGET override legitimately never triggers.
    if (options.memory_budget_bytes > 0 &&
        options.memory_budget_bytes <= 4096) {
      EXPECT_GT(stats.budget_folds + stats.budget_base_merges, 0u);
    }
  }
  // Store, snapshots and all runs are gone: the tracker must balance.
  // This pins the deferred-reclaim fix — before it, runs destroyed off
  // the store mutex never subtracted their bytes.
  EXPECT_TRUE(tracker->balanced());
}

TEST(ChurnTest, ClearThenReuseKeepsInvariants) {
  Rng rng(7);
  Hexastore store;
  std::set<IdTriple> oracle;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 200; ++i) {
      IdTriple t = RandomTriple(rng, 20);
      store.Insert(t);
      oracle.insert(t);
    }
    ASSERT_NO_FATAL_FAILURE(ExpectAgreesWithOracle(store, oracle));
    store.Clear();
    oracle.clear();
    EXPECT_EQ(store.size(), 0u);
    std::string err;
    ASSERT_TRUE(store.CheckInvariants(&err)) << err;
  }
}

}  // namespace
}  // namespace hexastore

// Tests for SPARQL COUNT / GROUP BY, including an end-to-end check that
// the SPARQL form of Barton Query 1 matches the hand-planned workload
// implementation.
#include <gtest/gtest.h>

#include "core/graph.h"
#include "data/barton_generator.h"
#include "query/sparql_engine.h"
#include "workload/barton_queries.h"

namespace hexastore {
namespace {

class SparqlAggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(graph_
                    .LoadNTriples(
                        "<http://x/a> <http://x/type> <http://x/T1> .\n"
                        "<http://x/b> <http://x/type> <http://x/T1> .\n"
                        "<http://x/c> <http://x/type> <http://x/T2> .\n"
                        "<http://x/a> <http://x/knows> <http://x/b> .\n"
                        "<http://x/a> <http://x/knows> <http://x/c> .\n"
                        "<http://x/b> <http://x/knows> <http://x/c> .\n")
                    .ok());
  }

  ResultSet Run(const std::string& query) {
    auto r = RunSparql(graph_.store(), graph_.dict(), query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  Graph graph_;
};

TEST_F(SparqlAggregateTest, ParseAggregate) {
  auto r = ParseSparql(
      "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s <p> ?t } GROUP BY ?t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ParsedQuery& q = r.value();
  EXPECT_EQ(q.select_vars, (std::vector<std::string>{"t"}));
  ASSERT_EQ(q.aggregates.size(), 1u);
  EXPECT_EQ(q.aggregates[0].var, "s");
  EXPECT_EQ(q.aggregates[0].alias, "n");
  EXPECT_FALSE(q.aggregates[0].distinct);
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"t"}));
}

TEST_F(SparqlAggregateTest, ParseCountStarAndDistinct) {
  auto r = ParseSparql(
      "SELECT (COUNT(*) AS ?all) (COUNT(DISTINCT ?o) AS ?vals) "
      "WHERE { ?s ?p ?o }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().aggregates.size(), 2u);
  EXPECT_TRUE(r.value().aggregates[0].var.empty());
  EXPECT_TRUE(r.value().aggregates[1].distinct);
}

TEST_F(SparqlAggregateTest, ParseErrors) {
  EXPECT_FALSE(ParseSparql("SELECT (SUM(?x) AS ?s) WHERE { ?a ?b ?x }")
                   .ok());  // only COUNT
  EXPECT_FALSE(
      ParseSparql("SELECT (COUNT(?x) ?y) WHERE { ?a ?b ?x }").ok());
  EXPECT_FALSE(
      ParseSparql("SELECT (COUNT(?x) AS ?y WHERE { ?a ?b ?x }").ok());
  EXPECT_FALSE(ParseSparql(
                   "SELECT ?s WHERE { ?s ?p ?o } GROUP BY")
                   .ok());
}

TEST_F(SparqlAggregateTest, GroupCountByType) {
  ResultSet r = Run(
      "PREFIX x: <http://x/>\n"
      "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s x:type ?t } GROUP BY ?t "
      "ORDER BY ?t");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.vars.size(), 2u);
  EXPECT_FALSE(r.IsNumeric(0));
  EXPECT_TRUE(r.IsNumeric(1));
  // T1 -> 2 subjects, T2 -> 1.
  EXPECT_EQ(graph_.dict().term(r.rows[0][0]), Term::Iri("http://x/T1"));
  EXPECT_EQ(r.rows[0][1], 2u);
  EXPECT_EQ(graph_.dict().term(r.rows[1][0]), Term::Iri("http://x/T2"));
  EXPECT_EQ(r.rows[1][1], 1u);
}

TEST_F(SparqlAggregateTest, CountStarWithoutGroupBy) {
  ResultSet r = Run("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], graph_.size());
}

TEST_F(SparqlAggregateTest, CountOverEmptyMatchIsZero) {
  ResultSet r = Run(
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://x/nothere> ?o }");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], 0u);
}

TEST_F(SparqlAggregateTest, CountDistinct) {
  // a knows {b, c}, b knows {c}: 3 rows, 2 distinct objects.
  ResultSet r = Run(
      "PREFIX x: <http://x/>\n"
      "SELECT (COUNT(*) AS ?rows) (COUNT(DISTINCT ?o) AS ?objs) "
      "WHERE { ?s x:knows ?o }");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], 3u);
  EXPECT_EQ(r.rows[0][1], 2u);
}

TEST_F(SparqlAggregateTest, OrderByAggregate) {
  ResultSet r = Run(
      "PREFIX x: <http://x/>\n"
      "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s x:type ?t } GROUP BY ?t "
      "ORDER BY ?n");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_LE(r.rows[0][1], r.rows[1][1]);
}

TEST_F(SparqlAggregateTest, SelectVarMustBeGrouped) {
  auto r = RunSparql(graph_.store(), graph_.dict(),
                     "PREFIX x: <http://x/>\n"
                     "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s x:knows ?o }");
  EXPECT_FALSE(r.ok());
}

TEST_F(SparqlAggregateTest, LimitAfterAggregation) {
  ResultSet r = Run(
      "PREFIX x: <http://x/>\n"
      "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s x:type ?t } GROUP BY ?t "
      "LIMIT 1");
  EXPECT_EQ(r.rows.size(), 1u);
}

// The headline cross-check: Barton Query 1 ("calculate the counts of each
// different type of data in the RDF store") expressed in SPARQL matches
// the hand-planned workload implementation on the same store.
TEST(SparqlAggregateBartonTest, Bq1MatchesWorkloadImplementation) {
  Graph graph;
  graph.BulkLoad(data::BartonGenerator().Generate(20000));
  workload::BartonIds ids = workload::BartonIds::Resolve(graph.dict());
  workload::CountRows expect =
      workload::BartonQ1Hexa(graph.store(), ids);

  auto r = RunSparql(graph.store(), graph.dict(),
                     "PREFIX b: <http://example.org/barton/>\n"
                     "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s b:type ?t } "
                     "GROUP BY ?t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  workload::CountRows got;
  for (const Row& row : r.value().rows) {
    got.emplace_back(row[0], row[1]);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace hexastore

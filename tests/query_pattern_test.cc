// Unit tests for pattern compilation and the variable table.
#include <gtest/gtest.h>

#include "query/pattern.h"

namespace hexastore {
namespace {

TEST(VarTableTest, InternAssignsDenseIds) {
  VarTable vars;
  EXPECT_EQ(vars.Intern("x"), 0);
  EXPECT_EQ(vars.Intern("y"), 1);
  EXPECT_EQ(vars.Intern("x"), 0);
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars.name(0), "x");
  EXPECT_EQ(vars.name(1), "y");
}

TEST(VarTableTest, LookupUnknown) {
  VarTable vars;
  EXPECT_EQ(vars.Lookup("nope"), kNoVar);
}

TEST(PatternTermTest, BoundVsVariable) {
  PatternTerm bound = PatternTerm::Bound(Term::Iri("a"));
  EXPECT_FALSE(bound.is_var());
  EXPECT_EQ(bound.term(), Term::Iri("a"));

  PatternTerm var = PatternTerm::Variable("x");
  EXPECT_TRUE(var.is_var());
  EXPECT_EQ(var.var(), "x");
}

TEST(CompileBgpTest, CompilesConstantsAndVars) {
  Dictionary dict;
  Id a = dict.Intern(Term::Iri("a"));
  Id p = dict.Intern(Term::Iri("p"));

  std::vector<TriplePattern> patterns = {
      {PatternTerm::Bound(Term::Iri("a")), PatternTerm::Bound(Term::Iri("p")),
       PatternTerm::Variable("x")},
      {PatternTerm::Variable("x"), PatternTerm::Bound(Term::Iri("p")),
       PatternTerm::Variable("y")},
  };
  CompiledBgp bgp = CompileBgp(patterns, dict);
  EXPECT_FALSE(bgp.trivially_empty);
  ASSERT_EQ(bgp.patterns.size(), 2u);
  EXPECT_EQ(bgp.patterns[0].s.id, a);
  EXPECT_EQ(bgp.patterns[0].p.id, p);
  EXPECT_TRUE(bgp.patterns[0].o.is_var());
  // Shared variable gets the same VarId in both patterns.
  EXPECT_EQ(bgp.patterns[0].o.var, bgp.patterns[1].s.var);
  EXPECT_NE(bgp.patterns[1].s.var, bgp.patterns[1].o.var);
  EXPECT_EQ(bgp.vars.size(), 2u);
  EXPECT_EQ(bgp.patterns[0].bound_count(), 2);
  EXPECT_EQ(bgp.patterns[1].bound_count(), 1);
}

TEST(CompileBgpTest, UnknownConstantMarksTriviallyEmpty) {
  Dictionary dict;
  dict.Intern(Term::Iri("known"));
  std::vector<TriplePattern> patterns = {
      {PatternTerm::Bound(Term::Iri("unknown")),
       PatternTerm::Variable("p"), PatternTerm::Variable("o")},
  };
  CompiledBgp bgp = CompileBgp(patterns, dict);
  EXPECT_TRUE(bgp.trivially_empty);
}

}  // namespace
}  // namespace hexastore

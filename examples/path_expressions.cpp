// Path-expression example (paper §4.3): evaluates multi-hop predicate
// paths over a LUBM-like graph with the Hexastore merge-join strategy and
// cross-checks against the generic hash-join evaluation.
//
// Usage: path_expressions [num_triples]   (default 80000)
#include <chrono>
#include <iostream>
#include <string>

#include "core/hexastore.h"
#include "data/lubm_generator.h"
#include "dict/dictionary.h"
#include "query/path.h"

int main(int argc, char** argv) {
  using namespace hexastore;  // NOLINT
  using data::LubmGenerator;

  std::size_t num_triples = 80000;
  if (argc > 1) {
    num_triples = std::stoull(argv[1]);
  }

  auto triples = LubmGenerator().Generate(num_triples);
  Dictionary dict;
  IdTripleVec encoded;
  for (const auto& t : triples) {
    encoded.push_back(dict.Encode(t));
  }
  Hexastore store;
  store.BulkLoad(encoded);
  std::cout << "Loaded " << store.size() << " triples.\n\n";

  struct NamedPath {
    std::string description;
    std::vector<Term> predicates;
  };
  const NamedPath paths[] = {
      {"student -advisor-> faculty -worksFor-> department",
       {LubmGenerator::PropAdvisor(), LubmGenerator::PropWorksFor()}},
      {"student -advisor-> faculty -worksFor-> dept -subOrgOf-> university",
       {LubmGenerator::PropAdvisor(), LubmGenerator::PropWorksFor(),
        LubmGenerator::PropSubOrganizationOf()}},
      {"publication -author-> person -memberOf-> department",
       {LubmGenerator::PropPublicationAuthor(),
        LubmGenerator::PropMemberOf()}},
  };

  for (const auto& path : paths) {
    std::vector<Id> ids;
    bool resolvable = true;
    for (const auto& p : path.predicates) {
      Id id = dict.Lookup(p);
      if (id == kInvalidId) {
        resolvable = false;
      }
      ids.push_back(id);
    }
    if (!resolvable) {
      std::cout << path.description << ": predicates absent, skipping\n";
      continue;
    }

    auto t0 = std::chrono::steady_clock::now();
    PathPairs merge_pairs = EvalPathHexastore(store, ids);
    auto t1 = std::chrono::steady_clock::now();
    PathPairs hash_pairs = EvalPathGeneric(store, ids);
    auto t2 = std::chrono::steady_clock::now();

    auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    std::cout << path.description << "\n  endpoint pairs: "
              << merge_pairs.size() << " | merge-join strategy "
              << ms(t0, t1) << " ms, hash-join fallback " << ms(t1, t2)
              << " ms, results "
              << (merge_pairs == hash_pairs ? "AGREE" : "DISAGREE")
              << "\n";
    if (merge_pairs != hash_pairs) {
      return 1;
    }
    if (!merge_pairs.empty()) {
      auto s = dict.TryTerm(merge_pairs[0].first);
      auto e = dict.TryTerm(merge_pairs[0].second);
      std::cout << "  e.g. " << (s ? s->ToNTriples() : "?") << "  ~~>  "
                << (e ? e->ToNTriples() : "?") << "\n";
    }
  }
  return 0;
}

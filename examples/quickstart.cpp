// Quickstart: build a small RDF graph, run pattern lookups, and show the
// six-index architecture at work.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <optional>

#include "core/graph.h"

int main() {
  using hexastore::Graph;
  using hexastore::Term;
  using hexastore::Triple;

  Graph graph;

  // The paper's Figure 1 sample data: academic information about four
  // people.
  auto iri = [](const std::string& s) { return Term::Iri(s); };
  auto lit = [](const std::string& s) { return Term::Literal(s); };

  graph.Insert({iri("ID1"), iri("type"), iri("FullProfessor")});
  graph.Insert({iri("ID1"), iri("teacherOf"), lit("AI")});
  graph.Insert({iri("ID1"), iri("bachelorFrom"), lit("MIT")});
  graph.Insert({iri("ID1"), iri("mastersFrom"), lit("Cambridge")});
  graph.Insert({iri("ID1"), iri("phdFrom"), lit("Yale")});
  graph.Insert({iri("ID2"), iri("type"), iri("AssocProfessor")});
  graph.Insert({iri("ID2"), iri("worksFor"), lit("MIT")});
  graph.Insert({iri("ID2"), iri("teacherOf"), lit("DataBases")});
  graph.Insert({iri("ID2"), iri("bachelorsFrom"), lit("Yale")});
  graph.Insert({iri("ID2"), iri("phdFrom"), lit("Stanford")});
  graph.Insert({iri("ID3"), iri("type"), iri("GradStudent")});
  graph.Insert({iri("ID3"), iri("advisor"), iri("ID2")});
  graph.Insert({iri("ID3"), iri("teachingAssist"), lit("AI")});
  graph.Insert({iri("ID3"), iri("bachelorsFrom"), lit("Stanford")});
  graph.Insert({iri("ID3"), iri("mastersFrom"), lit("Princeton")});
  graph.Insert({iri("ID4"), iri("type"), iri("GradStudent")});
  graph.Insert({iri("ID4"), iri("advisor"), iri("ID1")});
  graph.Insert({iri("ID4"), iri("takesCourse"), lit("DataBases")});
  graph.Insert({iri("ID4"), iri("bachelorsFrom"), lit("Columbia")});

  std::cout << "Loaded " << graph.size() << " triples.\n\n";

  // Q: what relationship, if any, does ID2 have to MIT? (object- and
  // subject-bound, property unknown — the query class the paper argues
  // existing stores handle poorly.)
  std::cout << "ID2 ? MIT:\n";
  for (const Triple& t : graph.Match(iri("ID2"), std::nullopt, lit("MIT"))) {
    std::cout << "  " << t.ToNTriples() << "\n";
  }

  // Q: everything related to Stanford, any property, any subject.
  std::cout << "\n? ? Stanford (object-bound lookup via osp index):\n";
  for (const Triple& t :
       graph.Match(std::nullopt, std::nullopt, lit("Stanford"))) {
    std::cout << "  " << t.ToNTriples() << "\n";
  }

  // Q: all statements about ID1.
  std::cout << "\nID1 ? ? (subject-bound lookup via spo index):\n";
  for (const Triple& t :
       graph.Match(iri("ID1"), std::nullopt, std::nullopt)) {
    std::cout << "  " << t.ToNTriples() << "\n";
  }

  // Updates touch all six indexes but stay consistent.
  graph.Erase({iri("ID4"), iri("takesCourse"), lit("DataBases")});
  std::cout << "\nAfter erasing ID4 takesCourse DataBases: " << graph.size()
            << " triples, DataBases lookups: "
            << graph.Match(std::nullopt, std::nullopt, lit("DataBases"))
                   .size()
            << "\n";

  // Index structure statistics: the six permutation indexes plus shared
  // terminal lists (worst-case 5x the key entries of a triples table).
  std::cout << "\n" << graph.store().Stats().ToString();
  return 0;
}

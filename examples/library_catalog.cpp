// Library-catalog example: generates a Barton-like catalog and replays
// the paper's Longwell-style browsing session (BQ1, BQ2, BQ5, BQ7),
// printing human-readable results.
//
// Usage: library_catalog [num_triples]   (default 50000)
#include <algorithm>
#include <cstdio>
#include <chrono>
#include <iostream>
#include <string>

#include "baseline/vertical_store.h"
#include "core/graph.h"
#include "core/hexastore.h"
#include "data/barton_generator.h"
#include "io/snapshot.h"
#include "dict/dictionary.h"
#include "workload/barton_queries.h"

int main(int argc, char** argv) {
  using namespace hexastore;  // NOLINT
  using data::BartonGenerator;

  std::size_t num_triples = 50000;
  if (argc > 1) {
    num_triples = std::stoull(argv[1]);
  }

  std::cout << "Generating " << num_triples
            << " Barton-like catalog triples...\n";
  auto triples = BartonGenerator().Generate(num_triples);

  Dictionary dict;
  IdTripleVec encoded;
  for (const auto& t : triples) {
    encoded.push_back(dict.Encode(t));
  }
  Hexastore store;
  store.BulkLoad(encoded);
  workload::BartonIds ids = workload::BartonIds::Resolve(dict);

  auto term_str = [&dict](Id id) {
    auto t = dict.TryTerm(id);
    return t.has_value() ? t->ToNTriples() : std::string("?");
  };

  // BQ1: what kinds of data are in the store? (the first thing the
  // Longwell browser shows.)
  std::cout << "\nBQ1 - record counts per Type:\n";
  for (const auto& [type, count] : workload::BartonQ1Hexa(store, ids)) {
    std::cout << "  " << term_str(type) << ": " << count << "\n";
  }

  // BQ2: which properties are defined for textual material, how often?
  std::cout << "\nBQ2 - property frequencies for Type:Text (top 10):\n";
  auto freq = workload::BartonQ2Hexa(store, ids, nullptr);
  std::sort(freq.begin(), freq.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  for (std::size_t i = 0; i < freq.size() && i < 10; ++i) {
    std::cout << "  " << term_str(freq[i].first) << ": "
              << freq[i].second << "\n";
  }

  // BQ5: inferred types of records originating at the Library of
  // Congress.
  auto inferred = workload::BartonQ5Hexa(store, ids);
  std::cout << "\nBQ5 - inferred non-Text types for DLC records: "
            << inferred.size() << " (subject, type) pairs";
  if (!inferred.empty()) {
    std::cout << ", e.g. " << term_str(inferred[0].first) << " -> "
              << term_str(inferred[0].second);
  }
  std::cout << "\n";

  // BQ7: what does Point:"end" mean? The result reveals that such
  // resources are Dates, i.e. end dates.
  auto point_end = workload::BartonQ7Hexa(store, ids);
  std::cout << "\nBQ7 - Encoding/Type of resources with Point:\"end\": "
            << point_end.size() << " triples";
  if (!point_end.empty()) {
    std::cout << ", e.g. " << term_str(point_end[0].s) << " "
              << term_str(point_end[0].p) << " "
              << term_str(point_end[0].o);
  }
  std::cout << "\n";

  std::cout << "\nIndex memory: " << store.MemoryBytes() / (1024 * 1024)
            << " MB for " << store.size() << " triples\n";

  // Persistence (paper §7 future work): snapshot the catalog to disk and
  // reload it into a fresh graph.
  Graph graph;
  graph.BulkLoad(triples);
  const std::string snapshot_path = "/tmp/barton_catalog.hxs";
  if (Status s = SaveSnapshotFile(graph, snapshot_path); !s.ok()) {
    std::cerr << "snapshot save failed: " << s.ToString() << "\n";
    return 1;
  }
  Graph reloaded;
  if (Status s = LoadSnapshotFile(snapshot_path, &reloaded); !s.ok()) {
    std::cerr << "snapshot load failed: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "Snapshot round trip via " << snapshot_path << ": "
            << reloaded.size() << " triples reloaded ("
            << (reloaded.size() == graph.size() ? "OK" : "MISMATCH")
            << ")\n";
  std::remove(snapshot_path.c_str());
  return reloaded.size() == graph.size() ? 0 : 1;
}

// Command-line front end: load RDF data (N-Triples or a binary
// snapshot), optionally save a snapshot, and run SPARQL queries.
//
// Usage:
//   hexastore_cli --load-nt FILE [--save-snapshot FILE] [QUERY]
//   hexastore_cli --load-snapshot FILE [QUERY]
//   hexastore_cli --demo [QUERY]          (generated LUBM data)
//
// With no QUERY argument, queries are read from stdin (one per line or
// separated by blank lines). `--stats` prints index statistics instead;
// `--metrics` prints the graph's Prometheus-style metric exposition
// (see docs/observability.md). `--slow-queries` prints, after the
// queries ran, the slow-query log — queries whose end-to-end time
// crossed HEXA_SLOW_QUERY_US microseconds (0 = log everything,
// default 10ms). `--json` renders results as W3C SPARQL 1.1 JSON
// (application/sparql-results+json) instead of the ASCII table.
// Queries support EXPLAIN / EXPLAIN ANALYZE prefixes. All queries run
// through one query::Session sharing a plan cache and profile sink.
#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/graph.h"
#include "data/lubm_generator.h"
#include "io/snapshot.h"
#include "query/operators.h"
#include "query/profile.h"
#include "query/result_json.h"
#include "query/session.h"

namespace {

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

// True when `*text` starts with `word` followed by whitespace; consumes it.
bool ConsumeKeyword(std::string_view* text, std::string_view word) {
  if (text->size() <= word.size()) {
    return false;
  }
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>((*text)[i])) != word[i]) {
      return false;
    }
  }
  std::string_view rest = text->substr(word.size());
  if (!std::isspace(static_cast<unsigned char>(rest.front()))) {
    return false;
  }
  while (!rest.empty() &&
         std::isspace(static_cast<unsigned char>(rest.front()))) {
    rest.remove_prefix(1);
  }
  *text = rest;
  return true;
}

void RunQuery(const hexastore::Graph& graph, hexastore::query::Session* session,
              const std::string& query, bool json) {
  std::string_view text = query;
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  if (ConsumeKeyword(&text, "EXPLAIN")) {
    auto report = ConsumeKeyword(&text, "ANALYZE")
                      ? session->ExplainAnalyze(text)
                      : session->Explain(text);
    if (!report.ok()) {
      std::cout << "error: " << report.status().ToString() << "\n";
      return;
    }
    std::cout << report.value();
    return;
  }
  auto result = session->Query(query);
  if (!result.ok()) {
    std::cout << "error: " << result.status().ToString() << "\n";
    return;
  }
  if (json) {
    std::cout << hexastore::ResultSetToJson(result.value().set, graph.dict())
              << "\n";
    return;
  }
  std::cout << hexastore::FormatResultSet(result.value().set, graph.dict(),
                                          /*max_rows=*/50);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hexastore;  // NOLINT

  // Sink before graph: it must outlive the registry that renders it.
  ProfileSink sink;
  Graph graph;
  sink.RegisterWith(&graph.metrics_registry());
  PlanCache plan_cache;
  plan_cache.RegisterWith(&graph.metrics_registry());
  query::SessionOptions session_options;
  session_options.sink = &sink;
  session_options.plan_cache = &plan_cache;
  // Plain in-memory Hexastore: the TripleStore ctor forces PinPolicy
  // kNone (no generation gate to pin).
  query::Session session(graph.store(), graph.dict(), session_options);
  bool loaded = false;
  bool show_stats = false;
  bool show_metrics = false;
  bool show_slow_queries = false;
  bool json = false;
  std::string query;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--load-nt" && i + 1 < args.size()) {
      std::ifstream in(args[++i]);
      if (!in) {
        return Fail("cannot open " + args[i]);
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      auto r = graph.LoadNTriples(buffer.str());
      if (!r.ok()) {
        return Fail(r.status().ToString());
      }
      std::cerr << "loaded " << r.value() << " triples from " << args[i]
                << "\n";
      loaded = true;
    } else if (arg == "--load-snapshot" && i + 1 < args.size()) {
      Status s = LoadSnapshotFile(args[++i], &graph);
      if (!s.ok()) {
        return Fail(s.ToString());
      }
      std::cerr << "loaded " << graph.size() << " triples from snapshot\n";
      loaded = true;
    } else if (arg == "--save-snapshot" && i + 1 < args.size()) {
      Status s = SaveSnapshotFile(graph, args[++i]);
      if (!s.ok()) {
        return Fail(s.ToString());
      }
      std::cerr << "snapshot written to " << args[i] << "\n";
    } else if (arg == "--demo") {
      graph.BulkLoad(data::LubmGenerator().Generate(20000));
      std::cerr << "loaded " << graph.size() << " generated triples\n";
      loaded = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--metrics") {
      show_metrics = true;
    } else if (arg == "--slow-queries") {
      show_slow_queries = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help") {
      std::cout << "usage: hexastore_cli (--load-nt FILE | "
                   "--load-snapshot FILE | --demo) [--save-snapshot FILE] "
                   "[--stats] [--metrics] [--slow-queries] [--json] "
                   "[QUERY]\n";
      return 0;
    } else {
      query = arg;
    }
  }

  if (!loaded) {
    return Fail("no data source; use --load-nt, --load-snapshot or --demo");
  }
  if (show_stats) {
    std::cout << graph.store().Stats().ToString();
    std::cout << "distinct subjects:   "
              << graph.store().DistinctSubjects() << "\n"
              << "distinct predicates: "
              << graph.store().DistinctPredicates() << "\n"
              << "distinct objects:    "
              << graph.store().DistinctObjects() << "\n";
    return 0;
  }
  if (show_metrics) {
    std::cout << graph.MetricsText();
    return 0;
  }
  if (!query.empty()) {
    RunQuery(graph, &session, query, json);
    if (show_slow_queries) {
      std::cout << FormatSlowQueries(sink.slow_queries());
    }
    return 0;
  }
  // Interactive: blank line or balanced braces execute the buffer.
  std::string line;
  std::string buffer;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") {
      break;
    }
    buffer += line + "\n";
    auto opens = std::count(buffer.begin(), buffer.end(), '{');
    auto closes = std::count(buffer.begin(), buffer.end(), '}');
    if ((line.empty() || (opens > 0 && opens == closes)) &&
        buffer.find_first_not_of(" \t\n") != std::string::npos) {
      RunQuery(graph, &session, buffer, json);
      buffer.clear();
    }
  }
  if (show_slow_queries) {
    std::cout << FormatSlowQueries(sink.slow_queries());
  }
  return 0;
}

// SPARQL-subset REPL over a generated data set: demonstrates the query
// engine (parser, planner, BGP evaluation, filters, modifiers) on top of
// the Hexastore.
//
// Usage: sparql_repl [barton|lubm] [num_triples]
// Reads one query per line from stdin ('quit' exits); with no tty it
// runs a scripted demo. Prefix a query with EXPLAIN to see the plan
// without executing it, or EXPLAIN ANALYZE to execute and see the plan
// annotated with actual rows, q-errors and timings.
#include <algorithm>
#include <cctype>
#include <iostream>
#include <string>
#include <string_view>

#include "core/graph.h"
#include "data/barton_generator.h"
#include "data/lubm_generator.h"
#include "query/operators.h"
#include "query/profile.h"
#include "query/session.h"

namespace {

// Strips a leading case-insensitive keyword (plus trailing whitespace)
// from `text`; returns true and advances `text` on match.
bool ConsumeKeyword(std::string_view* text, std::string_view keyword) {
  if (text->size() < keyword.size()) {
    return false;
  }
  for (std::size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>((*text)[i])) != keyword[i]) {
      return false;
    }
  }
  std::string_view rest = text->substr(keyword.size());
  if (!rest.empty() && !std::isspace(static_cast<unsigned char>(rest[0]))) {
    return false;  // keyword is a prefix of a longer word
  }
  while (!rest.empty() &&
         std::isspace(static_cast<unsigned char>(rest[0]))) {
    rest.remove_prefix(1);
  }
  *text = rest;
  return true;
}

// One query through the unified Session API: the session pins nothing
// (plain in-memory Hexastore), shares the REPL-wide plan cache, and
// feeds its ProfileSink on every execution — no manual Record calls.
void RunQuery(const hexastore::Graph& graph, hexastore::query::Session* session,
              const std::string& query) {
  std::string_view text = query;
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  if (ConsumeKeyword(&text, "EXPLAIN")) {
    auto report = ConsumeKeyword(&text, "ANALYZE")
                      ? session->ExplainAnalyze(text)
                      : session->Explain(text);
    if (!report.ok()) {
      std::cout << "error: " << report.status().ToString() << "\n";
      return;
    }
    std::cout << report.value() << "\n";
    return;
  }
  auto result = session->Query(text);
  if (!result.ok()) {
    std::cout << "error: " << result.status().ToString() << "\n";
    return;
  }
  std::cout << hexastore::FormatResultSet(result.value().set, graph.dict())
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hexastore;  // NOLINT

  std::string dataset = argc > 1 ? argv[1] : "lubm";
  std::size_t num_triples = argc > 2 ? std::stoull(argv[2]) : 20000;

  // Declared before the graph so the sink outlives the registry that
  // renders its histograms and slow-query log.
  ProfileSink sink;
  Graph graph;
  sink.RegisterWith(&graph.metrics_registry());
  PlanCache plan_cache;
  plan_cache.RegisterWith(&graph.metrics_registry());
  query::SessionOptions session_options;
  session_options.sink = &sink;
  session_options.plan_cache = &plan_cache;
  query::Session session(graph.store(), graph.dict(), session_options);
  if (dataset == "barton") {
    graph.BulkLoad(data::BartonGenerator().Generate(num_triples));
  } else {
    graph.BulkLoad(data::LubmGenerator().Generate(num_triples));
  }
  std::cout << "Loaded " << graph.size() << " " << dataset
            << " triples. Enter SPARQL (SELECT ... WHERE {...}), 'quit' "
               "to exit.\n\n";

  // Scripted demo queries, used when stdin has no further input too.
  const std::string demo =
      dataset == "barton"
          ? "PREFIX b: <http://example.org/barton/>\n"
            "SELECT ?r ?t WHERE { ?r b:type ?t . ?r b:language "
            "\"French\" } LIMIT 5"
          : "PREFIX ub: "
            "<http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
            "SELECT DISTINCT ?prof ?dept WHERE { ?s ub:advisor ?prof . "
            "?prof ub:worksFor ?dept } ORDER BY ?prof LIMIT 5";
  std::cout << "demo> " << demo << "\n";
  RunQuery(graph, &session, demo);

  // Aggregation demo: the shape of the paper's Barton Query 1 ("counts
  // of each different type of data in the store") as a SPARQL aggregate.
  const std::string agg_demo =
      dataset == "barton"
          ? "PREFIX b: <http://example.org/barton/>\n"
            "SELECT ?t (COUNT(?r) AS ?n) WHERE { ?r b:type ?t } "
            "GROUP BY ?t ORDER BY ?t"
          : "PREFIX ub: "
            "<http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
            "SELECT ?class (COUNT(?x) AS ?n) WHERE { ?x ub:type ?class } "
            "GROUP BY ?class ORDER BY ?class";
  std::cout << "demo> " << agg_demo << "\n";
  RunQuery(graph, &session, agg_demo);

  std::string line;
  std::string buffer;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") {
      break;
    }
    if (line.empty()) {
      if (!buffer.empty()) {
        RunQuery(graph, &session, buffer);
        buffer.clear();
      }
      continue;
    }
    buffer += line + "\n";
    // Heuristic: execute once the query looks complete (balanced braces).
    auto opens = std::count(buffer.begin(), buffer.end(), '{');
    auto closes = std::count(buffer.begin(), buffer.end(), '}');
    if (opens > 0 && opens == closes) {
      RunQuery(graph, &session, buffer);
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    RunQuery(graph, &session, buffer);
  }
  return 0;
}

// Academic-graph example: generates a LUBM-like data set and runs the
// paper's five LUBM evaluation queries through the public workload API,
// comparing Hexastore answers against the COVP baselines.
//
// Usage: academic_graph [num_triples]   (default 50000)
#include <chrono>
#include <iostream>
#include <string>

#include "baseline/vertical_store.h"
#include "core/hexastore.h"
#include "data/lubm_generator.h"
#include "dict/dictionary.h"
#include "workload/lubm_queries.h"

namespace {

double MillisSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hexastore;  // NOLINT

  std::size_t num_triples = 50000;
  if (argc > 1) {
    num_triples = std::stoull(argv[1]);
  }

  std::cout << "Generating " << num_triples << " LUBM-like triples...\n";
  auto triples = data::LubmGenerator().Generate(num_triples);

  Dictionary dict;
  IdTripleVec encoded;
  encoded.reserve(triples.size());
  for (const auto& t : triples) {
    encoded.push_back(dict.Encode(t));
  }

  Hexastore hexa;
  VerticalStore covp1(false);
  VerticalStore covp2(true);
  hexa.BulkLoad(encoded);
  covp1.BulkLoad(encoded);
  covp2.BulkLoad(encoded);
  std::cout << "Loaded into Hexastore / COVP1 / COVP2; dictionary holds "
            << dict.size() << " terms.\n\n";

  workload::LubmIds ids = workload::LubmIds::Resolve(dict);

  auto time_ms = [](auto&& fn) {
    auto start = std::chrono::steady_clock::now();
    auto result = fn();
    return std::make_pair(MillisSince(start), result.size());
  };

  // LQ1: everyone related to Course10.
  {
    auto [t_hexa, n_hexa] = time_ms(
        [&] { return workload::LubmRelatedToHexa(hexa, ids.course10); });
    auto [t_c1, n_c1] = time_ms(
        [&] { return workload::LubmRelatedToCovp(covp1, ids.course10); });
    auto [t_c2, n_c2] = time_ms(
        [&] { return workload::LubmRelatedToCovp(covp2, ids.course10); });
    std::cout << "LQ1 (related to Course10): " << n_hexa << " rows | "
              << "Hexastore " << t_hexa << " ms, COVP1 " << t_c1
              << " ms, COVP2 " << t_c2 << " ms\n";
    if (n_hexa != n_c1 || n_hexa != n_c2) {
      std::cerr << "store disagreement!\n";
      return 1;
    }
  }

  // LQ2: everyone related to University0.
  {
    auto [t_hexa, n_hexa] = time_ms([&] {
      return workload::LubmRelatedToHexa(hexa, ids.university0);
    });
    auto [t_c1, n_c1] = time_ms([&] {
      return workload::LubmRelatedToCovp(covp1, ids.university0);
    });
    std::cout << "LQ2 (related to University0): " << n_hexa << " rows | "
              << "Hexastore " << t_hexa << " ms, COVP1 " << t_c1
              << " ms\n";
    if (n_hexa != n_c1) {
      std::cerr << "store disagreement!\n";
      return 1;
    }
  }

  // LQ3: everything about AssociateProfessor10.
  {
    auto [t_hexa, n_hexa] = time_ms(
        [&] { return workload::LubmQ3Hexa(hexa, ids.assoc_prof10); });
    auto [t_c1, n_c1] = time_ms(
        [&] { return workload::LubmQ3Covp(covp1, ids.assoc_prof10); });
    std::cout << "LQ3 (about AssociateProfessor10): " << n_hexa
              << " rows | Hexastore " << t_hexa << " ms, COVP1 " << t_c1
              << " ms\n";
    if (n_hexa != n_c1) {
      std::cerr << "store disagreement!\n";
      return 1;
    }
  }

  // LQ4: people in AP10's courses, grouped by course.
  {
    auto [t_hexa, n_hexa] =
        time_ms([&] { return workload::LubmQ4Hexa(hexa, ids); });
    auto [t_c1, n_c1] =
        time_ms([&] { return workload::LubmQ4Covp(covp1, ids); });
    std::cout << "LQ4 (grouped by AP10's courses): " << n_hexa
              << " course groups | Hexastore " << t_hexa << " ms, COVP1 "
              << t_c1 << " ms\n";
    if (n_hexa != n_c1) {
      std::cerr << "store disagreement!\n";
      return 1;
    }
  }

  // LQ5: degree holders from AP10's universities.
  {
    auto [t_hexa, n_hexa] =
        time_ms([&] { return workload::LubmQ5Hexa(hexa, ids); });
    auto [t_c1, n_c1] =
        time_ms([&] { return workload::LubmQ5Covp(covp1, ids); });
    std::cout << "LQ5 (degree holders, grouped by university): " << n_hexa
              << " university groups | Hexastore " << t_hexa
              << " ms, COVP1 " << t_c1 << " ms\n";
    if (n_hexa != n_c1) {
      std::cerr << "store disagreement!\n";
      return 1;
    }
  }

  std::cout << "\nMemory: Hexastore "
            << hexa.MemoryBytes() / (1024 * 1024) << " MB, COVP1 "
            << covp1.MemoryBytes() / (1024 * 1024) << " MB, COVP2 "
            << covp2.MemoryBytes() / (1024 * 1024) << " MB\n";
  return 0;
}

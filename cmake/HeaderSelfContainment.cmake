# Enforces the include-root contract: every header under src/ must
# compile on its own when included as "layer/name.h". A header that
# silently leans on its includer's includes breaks the first caller from
# another layer; this target turns that into a build error.
#
# Usage: hexa_add_header_selfcontain_target(<target-name>)
# Creates a static library target that compiles one generated TU per
# public header, linked into the normal `all` build.
function(hexa_add_header_selfcontain_target target)
  file(GLOB_RECURSE headers CONFIGURE_DEPENDS ${HEXA_INCLUDE_ROOT}/*.h)
  set(gen_dir ${CMAKE_BINARY_DIR}/header_selfcontain)
  set(tus)
  foreach(header IN LISTS headers)
    file(RELATIVE_PATH rel ${HEXA_INCLUDE_ROOT} ${header})
    string(REPLACE "/" "_" tu_name ${rel})
    set(tu ${gen_dir}/${tu_name}.cc)
    # Write via a staging file so an unchanged TU keeps its mtime and
    # reconfigures don't trigger 36 needless recompiles.
    file(WRITE ${tu}.in "#include \"${rel}\"\n#include \"${rel}\"  // idempotent\n")
    execute_process(COMMAND ${CMAKE_COMMAND} -E copy_if_different ${tu}.in ${tu})
    list(APPEND tus ${tu})
  endforeach()
  add_library(${target} STATIC ${tus})
  target_include_directories(${target} PRIVATE ${HEXA_INCLUDE_ROOT})
endfunction()
